//! A std-only thread-phase sampling profiler.
//!
//! Worker threads (shard pumps, the ingest router, HTTP query workers)
//! publish their *current phase* — one relaxed `u8` store per phase
//! change — into a per-thread [`ThreadProfile`]. A single [`Sampler`]
//! thread scrapes every registered profile at a configurable frequency,
//! bumping one [`Counter`] per observation.
//! The result is a flamegraph-shaped wall-time breakdown
//! (`samples[phase] / hz ≈ seconds spent in phase`) whose hot-path cost
//! is a single relaxed atomic store, independent of the sampling rate.
//!
//! The design is deliberately sampling-based rather than
//! instrumentation-based: timing every phase transition with
//! `Instant::now` would put two clock reads on paths that process one
//! point each, while a 97 Hz sampler observes the same distribution for
//! the cost of nothing at all on the measured threads.

use crate::error::DodError;
use crate::telemetry::Counter;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What a profiled thread is doing right now. `Idle` is the resting
/// state between commands; the rest name the work loops worth telling
/// apart when diagnosing a saturated pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Parked or waiting on a queue.
    Idle = 0,
    /// Routing points to shards (pivot distances, ghost decisions).
    Route = 1,
    /// Applying inserts to a window/index.
    Insert = 2,
    /// Expiring due residents and compacting.
    Expiry = 3,
    /// Appending records to a write-ahead log.
    WalAppend = 4,
    /// Waiting on an fsync/fdatasync.
    Fsync = 5,
    /// Answering a detection query.
    Query = 6,
}

/// Number of distinct phases (the length of [`PHASES`]).
pub const PHASE_COUNT: usize = 7;

/// Every phase, in `repr` order — the iteration order scrapes use.
pub const PHASES: [Phase; PHASE_COUNT] = [
    Phase::Idle,
    Phase::Route,
    Phase::Insert,
    Phase::Expiry,
    Phase::WalAppend,
    Phase::Fsync,
    Phase::Query,
];

impl Phase {
    /// Stable snake_case name, used as the Prometheus `phase` label.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Idle => "idle",
            Phase::Route => "route",
            Phase::Insert => "insert",
            Phase::Expiry => "expiry",
            Phase::WalAppend => "wal_append",
            Phase::Fsync => "fsync",
            Phase::Query => "query",
        }
    }

    fn from_u8(v: u8) -> Phase {
        PHASES.get(v as usize).copied().unwrap_or(Phase::Idle)
    }
}

/// One thread's published phase plus its accumulated sample counts.
/// The owning thread stores into `phase`; the sampler thread reads it
/// and bumps `samples` — no locks anywhere near the measured code.
#[derive(Debug)]
pub struct ThreadProfile {
    name: String,
    phase: AtomicU8,
    samples: [Counter; PHASE_COUNT],
}

impl ThreadProfile {
    fn new(name: String) -> Self {
        ThreadProfile {
            name,
            phase: AtomicU8::new(Phase::Idle as u8),
            samples: [const { Counter::new() }; PHASE_COUNT],
        }
    }

    /// The registered thread name (the Prometheus `thread` label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phase published most recently.
    pub fn current(&self) -> Phase {
        Phase::from_u8(self.phase.load(Ordering::Relaxed))
    }

    /// Publishes `phase` and returns a guard that restores the previous
    /// phase on drop, so nested scopes (a WAL append inside a routing
    /// round) unwind correctly. One relaxed store each way.
    pub fn enter(&self, phase: Phase) -> PhaseGuard<'_> {
        let prev = self.phase.swap(phase as u8, Ordering::Relaxed);
        PhaseGuard {
            profile: self,
            prev,
        }
    }

    /// Samples observed in `phase` so far.
    pub fn samples(&self, phase: Phase) -> u64 {
        self.samples[phase as usize].get()
    }
}

/// Restores the previously published phase when dropped.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    profile: &'a ThreadProfile,
    prev: u8,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.profile.phase.store(self.prev, Ordering::Relaxed);
    }
}

/// Convenience for optional profiling: enters `phase` iff a profile is
/// attached. Call sites hold the returned guard for the scope's length.
pub fn enter_opt<'a>(
    profile: &'a Option<Arc<ThreadProfile>>,
    phase: Phase,
) -> Option<PhaseGuard<'a>> {
    profile.as_ref().map(|p| p.enter(phase))
}

/// The registry of profiled threads. Registration takes a mutex (cold
/// path, once per thread); the sampling and publishing paths never do.
#[derive(Debug, Default)]
pub struct Profiler {
    slots: Mutex<Vec<Arc<ThreadProfile>>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-attaches to) the profile named `name`.
    /// Idempotent by name: a pipeline rebuilt after `finish()` finds its
    /// old counters and keeps accumulating instead of forking a
    /// duplicate label.
    pub fn register(&self, name: &str) -> Arc<ThreadProfile> {
        let mut slots = self.slots.lock().expect("profiler mutex poisoned");
        if let Some(p) = slots.iter().find(|p| p.name == name) {
            return Arc::clone(p);
        }
        let p = Arc::new(ThreadProfile::new(name.to_string()));
        slots.push(Arc::clone(&p));
        p
    }

    /// Every registered profile, name-sorted for deterministic scrapes.
    pub fn profiles(&self) -> Vec<Arc<ThreadProfile>> {
        let mut all = self.slots.lock().expect("profiler mutex poisoned").clone();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Drops every profile named `{prefix}/…` (and `prefix` itself).
    /// Called when the owner of a thread family is deleted — without
    /// this, a server creating and deleting sessions all day would
    /// accumulate dead `thread` labels without bound. Threads still
    /// holding an `Arc` to a dropped profile keep publishing into it
    /// harmlessly; it just stops being scraped.
    pub fn unregister_prefix(&self, prefix: &str) {
        let mut slots = self.slots.lock().expect("profiler mutex poisoned");
        slots.retain(|p| {
            p.name != prefix
                && !(p.name.starts_with(prefix)
                    && p.name.as_bytes().get(prefix.len()) == Some(&b'/'))
        });
    }
}

/// The background sampling thread. Created by [`Sampler::start`];
/// stopped (and joined) by [`Sampler::shutdown`] or drop.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// Highest accepted sampling rate: past 1 kHz the sampler stops being
/// "free" for the sampled process, which defeats its purpose.
pub const MAX_PROFILE_HZ: u32 = 1000;

impl Sampler {
    /// Starts scraping every profile registered in `profiler` (including
    /// ones registered later) `hz` times per second.
    ///
    /// `hz` outside `1..=`[`MAX_PROFILE_HZ`] is a typed
    /// [`DodError::InvalidSpec`] — a zero rate silently disabling the
    /// profiler, or a 1 MHz rate silently melting a core, are both
    /// configuration mistakes the caller should hear about.
    pub fn start(profiler: Arc<Profiler>, hz: u32) -> Result<Sampler, DodError> {
        if hz == 0 || hz > MAX_PROFILE_HZ {
            return Err(DodError::InvalidSpec {
                reason: format!("profile_hz must be in 1..={MAX_PROFILE_HZ}, got {hz}"),
            });
        }
        let period = Duration::from_nanos(1_000_000_000 / u64::from(hz));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("dod-profile-sampler".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    for p in profiler.profiles() {
                        p.samples[p.current() as usize].inc();
                    }
                    std::thread::park_timeout(period);
                }
            })
            .map_err(DodError::Io)?;
        Ok(Sampler {
            stop,
            thread: Some(thread),
        })
    }

    /// Stops the sampling thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_guard_nests_and_restores() {
        let p = ThreadProfile::new("t".into());
        assert_eq!(p.current(), Phase::Idle);
        {
            let _route = p.enter(Phase::Route);
            assert_eq!(p.current(), Phase::Route);
            {
                let _wal = p.enter(Phase::WalAppend);
                assert_eq!(p.current(), Phase::WalAppend);
            }
            assert_eq!(p.current(), Phase::Route);
        }
        assert_eq!(p.current(), Phase::Idle);
    }

    #[test]
    fn registration_is_idempotent_by_name() {
        let prof = Profiler::new();
        let a = prof.register("s1/pump-0");
        let b = prof.register("s1/pump-0");
        assert!(Arc::ptr_eq(&a, &b));
        prof.register("s1/router");
        let names: Vec<_> = prof
            .profiles()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        assert_eq!(names, ["s1/pump-0", "s1/router"], "name-sorted");
    }

    #[test]
    fn unregister_prefix_drops_exactly_the_family() {
        let prof = Profiler::new();
        for name in ["s1/router", "s1/pump-0", "s10/router", "s1", "http-0"] {
            prof.register(name);
        }
        prof.unregister_prefix("s1");
        let names: Vec<_> = prof
            .profiles()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        // "s10/router" shares the string prefix but not the family.
        assert_eq!(names, ["http-0", "s10/router"]);
    }

    #[test]
    fn sampler_rejects_bad_rates_with_typed_errors() {
        let prof = Arc::new(Profiler::new());
        for hz in [0, MAX_PROFILE_HZ + 1, u32::MAX] {
            match Sampler::start(Arc::clone(&prof), hz) {
                Err(DodError::InvalidSpec { reason }) => {
                    assert!(reason.contains("profile_hz"), "{reason}");
                }
                other => panic!("hz={hz} accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn sampler_accumulates_into_the_published_phase() {
        let prof = Arc::new(Profiler::new());
        let t = prof.register("worker");
        let _busy = t.enter(Phase::Insert);
        let sampler = Sampler::start(Arc::clone(&prof), MAX_PROFILE_HZ).expect("valid rate");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.samples(Phase::Insert) == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.shutdown();
        assert!(t.samples(Phase::Insert) > 0, "insert phase was sampled");
        assert_eq!(t.samples(Phase::Query), 0, "unvisited phases stay zero");
    }

    #[test]
    fn phases_have_stable_names_and_order() {
        let names: Vec<_> = PHASES.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "idle",
                "route",
                "insert",
                "expiry",
                "wal_append",
                "fsync",
                "query"
            ]
        );
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(*p as usize, i, "repr order matches PHASES order");
        }
    }
}
