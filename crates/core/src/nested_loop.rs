//! Nested-loop DOD \[Knorr & Ng, VLDB'98; Bay & Schwabacher, KDD'03\]: the
//! `O(n²)` baseline and the ground truth every other algorithm is tested
//! against.
//!
//! For each object, scan the dataset counting neighbors and stop the scan
//! once `k` are found. Following \[8\], the scan visits objects in a
//! randomized order: with a random order the expected scan length for an
//! inlier depends on its neighbor density, not on where its neighbors sit
//! in id order, which is what gives the algorithm its "near linear time in
//! practice" behavior on mostly-inlier datasets.

use crate::parallel::par_map_strided;
use crate::params::{assert_valid, DodParams, OutlierReport};
use dod_metrics::{Dataset, DistanceCounter};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Runs the randomized nested loop. Exact for any metric.
pub fn detect<D: Dataset + ?Sized>(data: &D, params: &DodParams, seed: u64) -> OutlierReport {
    assert_valid(params);
    let n = data.len();
    let (r, k) = (params.r, params.k);
    let t = Instant::now();
    if n == 0 || k == 0 {
        return OutlierReport::from_outliers(Vec::new(), t.elapsed().as_secs_f64());
    }
    // One shared random scan order (the per-object offset de-correlates
    // objects without paying for n shuffles).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));

    // The baseline counts its own evaluations too: early termination
    // makes even brute force cheaper than n·(n−1), and the report's
    // pruning power shows exactly how much.
    let counted = DistanceCounter::new(data);
    let flags: Vec<bool> = par_map_strided(n, params.threads, |p| {
        let mut count = 0usize;
        let start = p % n; // stagger scan starts across objects
        for idx in 0..n {
            let j = order[(start + idx) % n] as usize;
            if j != p && counted.dist(p, j) <= r {
                count += 1;
                if count >= k {
                    return false; // inlier
                }
            }
        }
        true // outlier
    });
    let outliers: Vec<u32> = flags
        .iter()
        .enumerate()
        .filter(|(_, &f)| f)
        .map(|(p, _)| p as u32)
        .collect();
    let mut report = OutlierReport::from_outliers(outliers, t.elapsed().as_secs_f64());
    report.cost.verify_dist_evals = counted.calls();
    report
}

/// Brute-force neighbor count without early termination — test helper.
pub fn neighbor_count<D: Dataset + ?Sized>(data: &D, p: usize, r: f64) -> usize {
    (0..data.len())
        .filter(|&j| j != p && data.dist(p, j) <= r)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::{StringSet, VectorSet, L2};

    fn line(points: &[f32]) -> VectorSet<L2> {
        VectorSet::from_rows(&points.iter().map(|&p| vec![p]).collect::<Vec<_>>(), L2)
    }

    #[test]
    fn finds_the_isolated_point() {
        // Cluster at 0..5, singleton at 100.
        let data = line(&[0.0, 1.0, 2.0, 3.0, 4.0, 100.0]);
        let res = detect(&data, &DodParams::new(5.0, 2), 0);
        assert_eq!(res.outliers, vec![5]);
    }

    #[test]
    fn k_one_means_no_neighbor_at_all() {
        let data = line(&[0.0, 0.5, 10.0, 20.0]);
        let res = detect(&data, &DodParams::new(1.0, 1), 1);
        assert_eq!(res.outliers, vec![2, 3]);
    }

    #[test]
    fn k_zero_yields_nothing() {
        let data = line(&[0.0, 100.0]);
        let res = detect(&data, &DodParams::new(1.0, 0), 0);
        assert!(res.outliers.is_empty());
    }

    #[test]
    fn k_geq_n_yields_everything() {
        let data = line(&[0.0, 1.0, 2.0]);
        let res = detect(&data, &DodParams::new(100.0, 3), 0);
        assert_eq!(res.outliers, vec![0, 1, 2]);
    }

    #[test]
    fn boundary_distance_counts_as_neighbor() {
        // dist == r must count (Definition 1 uses <=).
        let data = line(&[0.0, 1.0]);
        let res = detect(&data, &DodParams::new(1.0, 1), 0);
        assert!(res.outliers.is_empty());
    }

    #[test]
    fn result_is_independent_of_seed_and_threads() {
        let data = line(&[0.0, 0.2, 0.4, 5.0, 5.1, 30.0, 31.0, 90.0]);
        let p = DodParams::new(1.5, 2);
        let a = detect(&data, &p, 0);
        let b = detect(&data, &p, 999);
        let c = detect(&data, &p.with_threads(4), 7);
        assert_eq!(a.outliers, b.outliers);
        assert_eq!(a.outliers, c.outliers);
    }

    #[test]
    fn works_on_strings() {
        let data = StringSet::new(["cat", "bat", "hat", "zzzzzzzzzz"]);
        let res = detect(&data, &DodParams::new(1.0, 1), 0);
        assert_eq!(res.outliers, vec![3]);
    }

    #[test]
    fn empty_dataset() {
        let data = line(&[]);
        let res = detect(&data, &DodParams::new(1.0, 3), 0);
        assert!(res.outliers.is_empty());
    }

    #[test]
    fn cost_is_bounded_by_the_pairwise_baseline() {
        let data = line(&[0.0, 0.2, 0.4, 5.0, 5.1, 30.0, 31.0, 90.0]);
        let n = 8u64;
        let res = detect(&data, &DodParams::new(1.5, 2), 0);
        assert!(res.cost.verify_dist_evals > 0);
        assert!(res.cost.verify_dist_evals <= n * (n - 1));
        assert_eq!(res.cost.filter_dist_evals, 0);
        assert_eq!(res.cost.hops, 0);
        // Early termination on the dense prefix keeps pruning power > 0.
        assert!(res.cost.pruning_power(8) >= 0.0);
    }
}
