//! VP-tree DOD baseline \[Yianilos, SODA'93\]: build the strongest metric
//! range index offline, then answer one early-terminated range count per
//! object (the paper's §3 "simple and practical solution").
//!
//! The detection loop lives in a crate-internal `detect_on_tree` function
//! shared by the [`Engine`](crate::Engine) front door
//! ([`IndexSpec::VpTree`](crate::IndexSpec::VpTree)) and the deprecated
//! [`VpTreeDod`] shim.

use crate::parallel::par_map_strided;
use crate::params::{assert_valid, DodParams, OutlierReport};
use dod_metrics::Dataset;
use dod_vptree::VpTree;
use std::time::Instant;

/// One early-terminated range count per object over a prebuilt tree.
/// The caller guarantees `tree.len() == data.len()`.
pub(crate) fn detect_on_tree<D: Dataset + ?Sized>(
    tree: &VpTree,
    data: &D,
    r: f64,
    k: usize,
    threads: usize,
) -> OutlierReport {
    let n = data.len();
    let t = Instant::now();
    if n == 0 || k == 0 {
        return OutlierReport::from_outliers(Vec::new(), t.elapsed().as_secs_f64());
    }
    let flags: Vec<bool> = par_map_strided(n, threads, |p| tree.range_count(data, p, r, k) < k);
    let outliers: Vec<u32> = flags
        .iter()
        .enumerate()
        .filter(|(_, &f)| f)
        .map(|(p, _)| p as u32)
        .collect();
    OutlierReport::from_outliers(outliers, t.elapsed().as_secs_f64())
}

/// The offline-built VP-tree index plus its detection entry point — the
/// pre-`Engine` front door, kept for one release as a thin shim.
#[deprecated(since = "0.2.0", note = "use dod_core::Engine with IndexSpec::VpTree")]
pub struct VpTreeDod {
    tree: VpTree,
    /// Wall-clock seconds of the offline build (paper §6.1 reports it).
    pub build_secs: f64,
}

#[allow(deprecated)]
impl VpTreeDod {
    /// Builds the VP-tree over `data` (one-time pre-processing).
    pub fn build<D: Dataset + ?Sized>(data: &D, seed: u64) -> Self {
        let t = Instant::now();
        let tree = VpTree::build(data, seed);
        VpTreeDod {
            tree,
            build_secs: t.elapsed().as_secs_f64(),
        }
    }

    /// Index footprint in bytes (paper Table 6).
    pub fn size_bytes(&self) -> usize {
        self.tree.size_bytes()
    }

    /// Detects all `(r, k)` outliers: one range count per object, stopped
    /// at `k`.
    ///
    /// # Panics
    /// Panics on an invalid radius or a tree/dataset size mismatch — the
    /// historical contract of this entry point.
    /// [`Engine::query`](crate::Engine::query) surfaces both as
    /// [`DodError`](crate::DodError) instead.
    pub fn detect<D: Dataset + ?Sized>(&self, data: &D, params: &DodParams) -> OutlierReport {
        assert_valid(params);
        assert_eq!(
            self.tree.len(),
            data.len(),
            "index was built over {} objects but the dataset has {}",
            self.tree.len(),
            data.len()
        );
        detect_on_tree(&self.tree, data, params.r, params.k, params.threads)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::nested_loop;
    use dod_metrics::{StringSet, VectorSet, L2};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_blobs(n: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                if i % 30 == 29 {
                    vec![rng.gen_range(40.0f32..80.0), rng.gen_range(40.0f32..80.0)]
                } else {
                    let c = (i % 4) as f32 * 6.0;
                    vec![c + rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)]
                }
            })
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn matches_nested_loop() {
        let data = random_blobs(500, 1);
        let dod = VpTreeDod::build(&data, 0);
        for (r, k) in [(1.5, 4), (2.5, 9), (0.6, 1)] {
            let p = DodParams::new(r, k);
            assert_eq!(
                dod.detect(&data, &p).outliers,
                nested_loop::detect(&data, &p, 0).outliers,
                "r={r} k={k}"
            );
        }
    }

    #[test]
    fn reusable_across_queries() {
        let data = random_blobs(200, 2);
        let dod = VpTreeDod::build(&data, 1);
        let a = dod.detect(&data, &DodParams::new(1.0, 3));
        let b = dod.detect(&data, &DodParams::new(2.0, 3));
        // Larger r can only shrink the outlier set.
        assert!(b.outliers.len() <= a.outliers.len());
        assert!(b.outliers.iter().all(|o| a.outliers.contains(o)));
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = random_blobs(300, 3);
        let dod = VpTreeDod::build(&data, 2);
        let p = DodParams::new(1.5, 5);
        assert_eq!(
            dod.detect(&data, &p).outliers,
            dod.detect(&data, &p.with_threads(4)).outliers
        );
    }

    #[test]
    fn works_on_strings() {
        let data = StringSet::new(["cat", "bat", "hat", "rat", "qqqqqqqqqqqq"]);
        let dod = VpTreeDod::build(&data, 0);
        let res = dod.detect(&data, &DodParams::new(1.0, 2));
        assert_eq!(res.outliers, vec![4]);
    }

    #[test]
    fn empty_dataset() {
        let data = VectorSet::from_rows(&[], L2);
        let dod = VpTreeDod::build(&data, 0);
        assert!(dod
            .detect(&data, &DodParams::new(1.0, 2))
            .outliers
            .is_empty());
    }

    #[test]
    fn build_time_is_recorded() {
        let data = random_blobs(100, 4);
        let dod = VpTreeDod::build(&data, 0);
        assert!(dod.build_secs >= 0.0);
        assert!(dod.size_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn invalid_radius_panics_on_the_deprecated_shim() {
        let data = random_blobs(30, 5);
        let _ = VpTreeDod::build(&data, 0).detect(&data, &DodParams::new(-2.0, 1));
    }
}
