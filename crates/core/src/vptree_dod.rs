//! VP-tree DOD baseline \[Yianilos, SODA'93\]: build the strongest metric
//! range index offline, then answer one early-terminated range count per
//! object (the paper's §3 "simple and practical solution").
//!
//! The detection loop lives in a crate-internal `detect_on_tree` function
//! served through the [`Engine`](crate::Engine) front door
//! ([`IndexSpec::VpTree`](crate::IndexSpec::VpTree)).

use crate::parallel::par_map_strided;
use crate::params::OutlierReport;
use dod_metrics::{Dataset, DistanceCounter};
use dod_vptree::VpTree;
use std::time::Instant;

/// One early-terminated range count per object over a prebuilt tree.
/// The caller guarantees `tree.len() == data.len()`.
pub(crate) fn detect_on_tree<D: Dataset + ?Sized>(
    tree: &VpTree,
    data: &D,
    r: f64,
    k: usize,
    threads: usize,
) -> OutlierReport {
    let n = data.len();
    let t = Instant::now();
    if n == 0 || k == 0 {
        return OutlierReport::from_outliers(Vec::new(), t.elapsed().as_secs_f64());
    }
    // Filter-less baseline: every evaluation books as verification cost.
    let counted = DistanceCounter::new(data);
    let flags: Vec<bool> = par_map_strided(n, threads, |p| tree.range_count(&counted, p, r, k) < k);
    let outliers: Vec<u32> = flags
        .iter()
        .enumerate()
        .filter(|(_, &f)| f)
        .map(|(p, _)| p as u32)
        .collect();
    let mut report = OutlierReport::from_outliers(outliers, t.elapsed().as_secs_f64());
    report.cost.verify_dist_evals = counted.calls();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, IndexSpec};
    use crate::nested_loop;
    use crate::params::DodParams;
    use crate::Query;
    use dod_metrics::{StringSet, VectorSet, L2};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A VP-tree engine over `data` — the only VP-tree detection entry
    /// point since the deprecated `VpTreeDod` shim was removed.
    fn vp_engine<D: Dataset>(data: D) -> Engine<D> {
        Engine::builder(data)
            .index(IndexSpec::VpTree)
            .build()
            .expect("VP-tree engines build for any dataset")
    }

    fn query(p: &DodParams) -> Query {
        Query::new(p.r, p.k)
            .expect("valid query")
            .with_threads(p.threads)
    }

    fn random_blobs(n: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                if i % 30 == 29 {
                    vec![rng.gen_range(40.0f32..80.0), rng.gen_range(40.0f32..80.0)]
                } else {
                    let c = (i % 4) as f32 * 6.0;
                    vec![c + rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)]
                }
            })
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn matches_nested_loop() {
        let data = random_blobs(500, 1);
        let engine = vp_engine(&data);
        for (r, k) in [(1.5, 4), (2.5, 9), (0.6, 1)] {
            let p = DodParams::new(r, k);
            assert_eq!(
                engine.query(query(&p)).expect("query").outliers,
                nested_loop::detect(&data, &p, 0).outliers,
                "r={r} k={k}"
            );
        }
    }

    #[test]
    fn reusable_across_queries() {
        let data = random_blobs(200, 2);
        let engine = vp_engine(&data);
        let a = engine.query(query(&DodParams::new(1.0, 3))).expect("query");
        let b = engine.query(query(&DodParams::new(2.0, 3))).expect("query");
        // Larger r can only shrink the outlier set.
        assert!(b.outliers.len() <= a.outliers.len());
        assert!(b.outliers.iter().all(|o| a.outliers.contains(o)));
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = random_blobs(300, 3);
        let engine = vp_engine(&data);
        let p = DodParams::new(1.5, 5);
        assert_eq!(
            engine.query(query(&p)).expect("query").outliers,
            engine
                .query(query(&p.with_threads(4)))
                .expect("query")
                .outliers
        );
    }

    #[test]
    fn works_on_strings() {
        let data = StringSet::new(["cat", "bat", "hat", "rat", "qqqqqqqqqqqq"]);
        let engine = vp_engine(&data);
        let res = engine.query(query(&DodParams::new(1.0, 2))).expect("query");
        assert_eq!(res.outliers, vec![4]);
    }

    #[test]
    fn empty_dataset() {
        let data = VectorSet::from_rows(&[], L2);
        let engine = vp_engine(&data);
        assert!(engine
            .query(query(&DodParams::new(1.0, 2)))
            .expect("query")
            .outliers
            .is_empty());
    }

    #[test]
    fn build_time_and_size_are_recorded() {
        let data = random_blobs(100, 4);
        let engine = vp_engine(&data);
        assert!(engine.build_secs() >= 0.0);
        assert!(engine.index_bytes() > 0);
        assert_eq!(engine.index_name(), "VP-tree");
    }
}
