//! Engine-level telemetry: lock-free counters and log-bucketed latency
//! histograms.
//!
//! Every [`Engine`](crate::Engine) owns an [`EngineMetrics`]; the query
//! paths record into it with relaxed atomics (a handful of nanoseconds per
//! query — negligible next to even one distance evaluation), so a serving
//! layer can scrape a live engine without locks, allocation, or slowing
//! the queries it is measuring. The types are deliberately generic — the
//! HTTP layer (`dod_server`) builds its request counters from the same
//! [`Counter`] and renders everything in Prometheus text format.
//!
//! Histograms are **log-bucketed**: bucket `i` counts observations at or
//! below `1µs · 4^i`, spanning 1µs to ~4.7 hours in 17 buckets plus the
//! overflow. Query latencies range over six orders of magnitude between a
//! filter-only hit on a warm engine and a cold full-verification pass, so
//! constant-resolution-per-decade is the right shape and 17 atomics is the
//! right cost.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter (relaxed atomics — totals are
/// exact, cross-counter ordering is not guaranteed, which is all a
/// metrics scrape needs).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram buckets (the last atomic slot counts
/// overflow observations beyond every bound).
pub const HISTOGRAM_BUCKETS: usize = 17;

/// The upper bound, in seconds, of finite bucket `i`: `1µs · 4^i`.
pub fn bucket_bound_secs(i: usize) -> f64 {
    1e-6 * 4f64.powi(i as i32)
}

/// A log-bucketed latency histogram: 17 finite buckets at `1µs · 4^i`
/// plus overflow, a count, and a sum (so scrapes can derive averages and
/// Prometheus can render a native `_bucket`/`_sum`/`_count` family).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    count: AtomicU64,
    /// Sum in nanoseconds: an integer so it can be atomic; 2^64 ns is
    /// ~584 years of accumulated latency, far beyond any process life.
    sum_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `secs` (non-finite or negative
    /// observations clamp to zero — they can only come from clock bugs,
    /// and a metrics path must never panic).
    pub fn observe_secs(&self, secs: f64) {
        let secs = if secs.is_finite() && secs > 0.0 {
            secs
        } else {
            0.0
        };
        let idx = self
            .finite_bounds()
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(HISTOGRAM_BUCKETS);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
    }

    fn finite_bounds(&self) -> [f64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(bucket_bound_secs)
    }

    /// A coherent-enough copy for rendering: cumulative counts per finite
    /// bound (the Prometheus `le` convention), total count, and the sum in
    /// seconds.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(HISTOGRAM_BUCKETS);
        let mut running = 0u64;
        for (i, b) in self.buckets[..HISTOGRAM_BUCKETS].iter().enumerate() {
            running += b.load(Ordering::Relaxed);
            cumulative.push((bucket_bound_secs(i), running));
        }
        HistogramSnapshot {
            cumulative,
            count: self.count.load(Ordering::Relaxed),
            sum_secs: self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

/// A rendered-out view of a [`Histogram`] at one instant.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// `(upper bound in seconds, observations ≤ bound)` per finite
    /// bucket, cumulative and ascending. Observations beyond the last
    /// bound appear only in `count` (the `+Inf` bucket).
    pub cumulative: Vec<(f64, u64)>,
    /// Total observations (the `+Inf` cumulative bucket).
    pub count: u64,
    /// Sum of all observations, in seconds.
    pub sum_secs: f64,
}

/// Per-engine query telemetry, recorded by
/// [`Engine::query`](crate::Engine::query) and
/// [`Engine::query_many`](crate::Engine::query_many) and scraped by
/// serving layers via [`Engine::metrics`](crate::Engine::metrics).
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Queries answered successfully (batch members count individually).
    pub queries: Counter,
    /// Queries that returned an error.
    pub query_errors: Counter,
    /// `query_many` batches served.
    pub batches: Counter,
    /// Total outliers reported across all queries.
    pub outliers_reported: Counter,
    /// Latency of successful queries (per query, not per batch).
    pub latency: Histogram,
    /// Cumulative distance evaluations spent in filtering phases.
    pub filter_dist_evals: Counter,
    /// Cumulative distance evaluations spent verifying candidates.
    pub verify_dist_evals: Counter,
    /// Cumulative graph hops (traversal queue pops) across all queries.
    pub hops: Counter,
    /// Cumulative verification candidates (`|P'|`) across all queries.
    pub candidates: Counter,
    /// Cumulative outliers decided during filtering (exact-`K'` shortcut).
    pub decided_in_filter: Counter,
    /// Cumulative candidates re-classified as inliers by verification.
    pub false_positives: Counter,
}

impl EngineMetrics {
    /// Zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one successful report's cost and filter-effectiveness
    /// accounting into the cumulative counters.
    pub fn record_report(&self, report: &crate::OutlierReport) {
        self.filter_dist_evals.add(report.cost.filter_dist_evals);
        self.verify_dist_evals.add(report.cost.verify_dist_evals);
        self.hops.add(report.cost.hops);
        self.candidates.add(report.candidates as u64);
        self.decided_in_filter.add(report.decided_in_filter as u64);
        self.false_positives.add(report.false_positives as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_up_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        c.add(5);
        assert_eq!(c.get(), 4005);
    }

    #[test]
    fn histogram_buckets_observations_by_magnitude() {
        let h = Histogram::new();
        h.observe_secs(0.5e-6); // bucket 0 (≤ 1µs)
        h.observe_secs(3e-6); // bucket 1 (≤ 4µs)
        h.observe_secs(1.0); // ≤ 4^10 µs ≈ 1.05s → bucket 10
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.cumulative[0], (1e-6, 1));
        assert_eq!(snap.cumulative[1].1, 2);
        // Cumulative counts are non-decreasing and end at the total.
        assert!(snap.cumulative.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(snap.cumulative.last().unwrap().1, 3);
        assert!((snap.sum_secs - 1.0).abs() < 1e-3);
    }

    #[test]
    fn histogram_overflow_and_garbage_never_panic() {
        let h = Histogram::new();
        h.observe_secs(1e9); // beyond every finite bound
        h.observe_secs(f64::NAN);
        h.observe_secs(-3.0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        // The overflow observation is visible only in the +Inf count.
        assert_eq!(snap.cumulative.last().unwrap().1, 2);
    }

    #[test]
    fn concurrent_observations_sum_exactly() {
        // 8 threads × 500 observations of exactly 1ms each: count and sum
        // must land exactly (1ms · 1e9 is integral, so no rounding noise),
        // and every observation must land in one bucket.
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        h.observe_secs(1e-3);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert!((snap.sum_secs - 4.0).abs() < 1e-9, "sum {}", snap.sum_secs);
        assert_eq!(
            snap.cumulative.last().unwrap().1,
            4000,
            "no observation fell into overflow"
        );
    }

    #[test]
    fn boundary_values_land_in_the_documented_bucket() {
        // The documented rule is "bucket i counts observations at or
        // below 1µs · 4^i": an observation exactly on a bound belongs to
        // that bucket, not the next one.
        for i in 0..HISTOGRAM_BUCKETS {
            let h = Histogram::new();
            h.observe_secs(bucket_bound_secs(i));
            let snap = h.snapshot();
            let cum_at = |j: usize| snap.cumulative[j].1;
            assert_eq!(cum_at(i), 1, "bound {i} counts at its own bucket");
            if i > 0 {
                assert_eq!(cum_at(i - 1), 0, "bound {i} is above bucket {}", i - 1);
            }
        }
        // ...and the value just above the top bound overflows.
        let h = Histogram::new();
        h.observe_secs(bucket_bound_secs(HISTOGRAM_BUCKETS - 1) * 1.01);
        let snap = h.snapshot();
        assert_eq!(snap.cumulative.last().unwrap().1, 0);
        assert_eq!(snap.count, 1);
    }

    #[test]
    fn snapshot_under_load_never_underflows() {
        // Snapshots race with writers by design; the invariants that must
        // survive the race are: cumulative counts non-decreasing across
        // buckets, the last finite cumulative never exceeds the +Inf
        // count by more than the in-flight window, and nothing wraps.
        let h = Histogram::new();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                let stop = &stop;
                s.spawn(move || {
                    let mut v = 1e-6 * (t + 1) as f64;
                    while !stop.load(Ordering::Relaxed) {
                        h.observe_secs(v);
                        v = if v > 1.0 { 1e-6 } else { v * 1.7 };
                    }
                });
            }
            for _ in 0..200 {
                let snap = h.snapshot();
                assert!(
                    snap.cumulative.windows(2).all(|w| w[0].1 <= w[1].1),
                    "cumulative counts decreased mid-load"
                );
                assert!(snap.count < u64::MAX / 2, "count wrapped");
                assert!(snap.sum_secs >= 0.0, "sum went negative");
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Quiescent again: the finite buckets and +Inf must agree.
        let snap = h.snapshot();
        assert!(snap.cumulative.last().unwrap().1 <= snap.count);
    }

    #[test]
    fn bucket_bounds_are_log_spaced() {
        assert_eq!(bucket_bound_secs(0), 1e-6);
        assert_eq!(bucket_bound_secs(1), 4e-6);
        let last = bucket_bound_secs(HISTOGRAM_BUCKETS - 1);
        assert!(last > 3600.0, "top bound spans past an hour: {last}");
    }
}
