//! [`DodError`] — the workspace-wide error type.
//!
//! Every fallible operation on the public query path (building an
//! [`Engine`](crate::Engine), validating a [`Query`](crate::Query),
//! loading a persisted index, converting an
//! `AnyDataset` to a typed set) surfaces one of these variants instead of
//! panicking. The free-function baselines (`nested_loop`, `snif`,
//! `dolphin`) keep their documented panic contract by panicking with the
//! corresponding variant's `Display` text.

use dod_graph::serialize::DecodeError;
use std::io;

/// Any error the detection stack can surface to a caller.
#[derive(Debug)]
#[non_exhaustive]
pub enum DodError {
    /// The query radius is negative or not finite (Definition 2 requires
    /// a distance threshold `r >= 0`).
    InvalidRadius {
        /// The offending radius.
        r: f64,
    },
    /// A sliding-window specification is unusable (zero-capacity count
    /// window, non-positive or non-finite time horizon).
    InvalidWindow {
        /// What was wrong, in words.
        reason: String,
    },
    /// An [`IndexSpec`](crate::IndexSpec) cannot produce a working index
    /// (e.g. a zero graph degree).
    InvalidSpec {
        /// What was wrong, in words.
        reason: String,
    },
    /// A sharded-stream specification is unusable (zero shards, an empty
    /// warm-up prefix, …). Surfaced by `dod_shard::ShardSpec::validate`.
    InvalidShardSpec {
        /// What was wrong, in words.
        reason: String,
    },
    /// An index was built (or loaded) over a different number of objects
    /// than the dataset it is being queried with.
    SizeMismatch {
        /// Objects the index covers.
        index: usize,
        /// Objects in the dataset.
        data: usize,
    },
    /// A typed-dataset request hit a dataset of a different metric space
    /// (absorbed from `dod_datasets::FamilyMismatch`).
    FamilyMismatch {
        /// The space the caller asked for.
        expected: &'static str,
        /// The space the dataset actually is.
        found: &'static str,
    },
    /// A persisted index failed to deserialize: the payload is truncated
    /// or structurally invalid at `offset`.
    Corrupt {
        /// Byte offset (from the start of the payload) where decoding
        /// failed.
        offset: usize,
        /// What was wrong, in words.
        reason: &'static str,
    },
    /// An underlying I/O failure while persisting or loading an index.
    Io(io::Error),
}

impl std::fmt::Display for DodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DodError::InvalidRadius { r } => {
                write!(f, "r must be a finite non-negative number, got {r}")
            }
            DodError::InvalidWindow { reason } => write!(f, "invalid window: {reason}"),
            DodError::InvalidSpec { reason } => write!(f, "invalid index spec: {reason}"),
            DodError::InvalidShardSpec { reason } => write!(f, "invalid shard spec: {reason}"),
            DodError::SizeMismatch { index, data } => write!(
                f,
                "index was built over {index} objects but the dataset has {data}"
            ),
            DodError::FamilyMismatch { expected, found } => {
                write!(f, "expected a {expected} dataset, found a {found} dataset")
            }
            DodError::Corrupt { offset, reason } => {
                write!(f, "corrupt index bytes at offset {offset}: {reason}")
            }
            DodError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DodError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DodError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DodError {
    fn from(e: io::Error) -> Self {
        DodError::Io(e)
    }
}

impl From<DecodeError> for DodError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::Corrupt { offset, reason } => DodError::Corrupt { offset, reason },
            DecodeError::Io(e) => DodError::Io(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_the_historical_radius_message() {
        // The panicking free-function baselines use this Display text; the
        // `#[should_panic(expected = "finite non-negative")]` tests depend
        // on the phrase surviving.
        let e = DodError::InvalidRadius { r: -1.0 };
        assert!(e.to_string().contains("finite non-negative"));
    }

    #[test]
    fn corrupt_carries_the_failure_offset() {
        let e = DodError::Corrupt {
            offset: 17,
            reason: "truncated adjacency list",
        };
        let s = e.to_string();
        assert!(s.contains("offset 17"), "{s}");
        assert!(s.contains("truncated adjacency list"), "{s}");
    }

    #[test]
    fn io_errors_convert_and_expose_a_source() {
        let e: DodError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, DodError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn decode_errors_map_to_corrupt() {
        let e: DodError = DecodeError::Corrupt {
            offset: 4,
            reason: "bad magic",
        }
        .into();
        assert!(matches!(
            e,
            DodError::Corrupt {
                offset: 4,
                reason: "bad magic"
            }
        ));
    }
}
