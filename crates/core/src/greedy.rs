//! Greedy-Counting (paper Algorithm 2): graph-bounded range counting with
//! early termination.
//!
//! From object `p`, BFS the proximity graph expanding only vertices within
//! distance `r` of `p` — plus pivots beyond `r` when the graph asks for it
//! (lines 13–14; MRPG needs this because `Remove-Links` re-routes
//! non-pivot/non-pivot connectivity through pivots). Each vertex's distance
//! is evaluated at most once, and the walk stops the moment `k` neighbors
//! are confirmed, so inliers in dense regions cost `O(k)` distance
//! evaluations regardless of `n` or dimensionality.
//!
//! The returned count never exceeds the true neighbor count (Lemma 1):
//! outliers can never be filtered, which is what makes Algorithm 1 exact.

use dod_graph::ProximityGraph;
use dod_metrics::Dataset;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Reusable traversal state: epoch-stamped visited marks plus the BFS
/// queue. One buffer per worker thread avoids a fresh allocation per
/// object (the filtering phase runs `n` traversals).
pub struct TraversalBuffer {
    visited: Vec<u32>,
    epoch: u32,
    queue: VecDeque<u32>,
    /// Distance evaluations since the last [`take_cost`](Self::take_cost)
    /// — accumulated across traversals, *not* reset by [`begin`](Self::begin),
    /// so one drain per query phase captures every walk of that phase.
    dist_evals: u64,
    /// Vertices expanded (queue pops) since the last `take_cost`.
    hops: u64,
}

impl TraversalBuffer {
    /// A buffer for graphs of `n` vertices.
    pub fn new(n: usize) -> Self {
        TraversalBuffer {
            visited: vec![0; n],
            epoch: 0,
            queue: VecDeque::new(),
            dist_evals: 0,
            hops: 0,
        }
    }

    /// Drains the accumulated `(dist_evals, hops)` tally, resetting both
    /// to zero. Walk implementations sharing this buffer (the streaming
    /// crate's beam search) should book their own work with
    /// [`note_dist`](Self::note_dist)/[`note_hop`](Self::note_hop) so one
    /// drain covers the whole phase.
    pub fn take_cost(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.dist_evals),
            std::mem::take(&mut self.hops),
        )
    }

    /// Books `n` distance evaluations against this buffer's tally.
    #[inline]
    pub fn note_dist(&mut self, n: u64) {
        self.dist_evals += n;
    }

    /// Books `n` vertex expansions against this buffer's tally.
    #[inline]
    pub fn note_hop(&mut self, n: u64) {
        self.hops += n;
    }

    /// Starts a new traversal: all vertices become unvisited in O(1).
    ///
    /// Public so other walk implementations (e.g. the streaming crate's
    /// insertion-time beam search) can reuse the epoch-stamped visited set
    /// instead of duplicating the wrap-around logic.
    pub fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: reset marks once every 2^32 traversals.
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    /// Marks `v` visited; `true` iff it was unvisited this traversal.
    #[inline]
    pub fn mark(&mut self, v: u32) -> bool {
        let slot = &mut self.visited[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// A shared pool of [`TraversalBuffer`]s so repeated queries on one engine
/// stop re-allocating the `O(n)` visited array per call.
///
/// All pooled buffers are sized for the same graph (an engine's vertex
/// count never changes), so `take` can hand out any of them. `Sync` by
/// construction: workers take a buffer before spawning and return it after
/// joining, so the mutex is only touched outside the hot loop.
pub(crate) struct BufferPool {
    bufs: Mutex<Vec<TraversalBuffer>>,
}

impl BufferPool {
    /// An empty pool; buffers are created on first use.
    pub(crate) fn new() -> Self {
        BufferPool {
            bufs: Mutex::new(Vec::new()),
        }
    }

    /// A buffer for graphs of `n` vertices — pooled if available, fresh
    /// otherwise.
    pub(crate) fn take(&self, n: usize) -> TraversalBuffer {
        let pooled = self.lock().pop();
        match pooled {
            Some(buf) if buf.visited.len() == n => buf,
            _ => TraversalBuffer::new(n),
        }
    }

    /// Returns a buffer to the pool for the next query.
    pub(crate) fn put(&self, buf: TraversalBuffer) {
        self.lock().push(buf);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TraversalBuffer>> {
        // A poisoned pool only means a worker panicked mid-query; the
        // buffers themselves are always reusable.
        self.bufs.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Counts neighbors of `p` (objects within `r`, excluding `p`) reachable by
/// the greedy graph walk, stopping at `k`. Returns `min(reached, k)`.
///
/// Lemma 1: the result is a lower bound of the true neighbor count, so
/// `greedy_count(..) >= k` proves `p` is an inlier while `< k` only makes
/// it a *candidate* outlier.
pub fn greedy_count<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    p: usize,
    r: f64,
    k: usize,
    buf: &mut TraversalBuffer,
) -> usize {
    if k == 0 {
        return 0;
    }
    buf.begin();
    buf.mark(p as u32);
    buf.queue.push_back(p as u32);
    let mut count = 0usize;
    while let Some(v) = buf.queue.pop_front() {
        buf.hops += 1;
        for i in 0..g.adj[v as usize].len() {
            let w = g.adj[v as usize][i];
            if !buf.mark(w) {
                continue;
            }
            buf.dist_evals += 1;
            let d = data.dist(p, w as usize);
            if d <= r {
                count += 1;
                if count == k {
                    return count;
                }
                buf.queue.push_back(w);
            } else if g.expand_pivots && g.pivot[w as usize] {
                // Line 13: pivots bridge regions even when they themselves
                // lie outside the query ball.
                buf.queue.push_back(w);
            }
        }
    }
    count
}

/// Like [`greedy_count`], but collects the *ids* of the reached neighbors
/// into `out` (cleared first) instead of only counting them, and does not
/// stop at `k` — the walk floods everything reachable under the expansion
/// rule, up to `limit` collected ids.
///
/// The result is a subset of the true `r`-neighborhood of `p` (Lemma 1
/// applies unchanged), which is what incremental consumers — the streaming
/// engine's graph backend discovers a new point's neighbors with this —
/// need: every returned id is a certified neighbor, while missed neighbors
/// only weaken filtering, never exactness.
pub fn greedy_collect<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    p: usize,
    r: f64,
    limit: usize,
    buf: &mut TraversalBuffer,
    out: &mut Vec<u32>,
) {
    out.clear();
    if limit == 0 {
        return;
    }
    buf.begin();
    buf.mark(p as u32);
    buf.queue.push_back(p as u32);
    while let Some(v) = buf.queue.pop_front() {
        buf.hops += 1;
        for i in 0..g.adj[v as usize].len() {
            let w = g.adj[v as usize][i];
            if !buf.mark(w) {
                continue;
            }
            buf.dist_evals += 1;
            let d = data.dist(p, w as usize);
            if d <= r {
                out.push(w);
                if out.len() == limit {
                    return;
                }
                buf.queue.push_back(w);
            } else if g.expand_pivots && g.pivot[w as usize] {
                buf.queue.push_back(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_graph::GraphKind;
    use dod_metrics::{VectorSet, L2};

    /// A path graph over integer points 0..n on a line.
    fn line_graph(n: usize) -> (VectorSet<L2>, ProximityGraph) {
        let data = VectorSet::from_rows(&(0..n).map(|i| vec![i as f32]).collect::<Vec<_>>(), L2);
        let mut g = ProximityGraph::new(n, GraphKind::KGraph);
        for i in 0..n as u32 - 1 {
            g.add_undirected(i, i + 1);
        }
        (data, g)
    }

    #[test]
    fn counts_reachable_neighbors() {
        let (data, g) = line_graph(20);
        let mut buf = TraversalBuffer::new(20);
        // From point 10 with r = 3: neighbors are 7..13 minus itself = 6.
        assert_eq!(greedy_count(&g, &data, 10, 3.0, 100, &mut buf), 6);
    }

    #[test]
    fn early_termination_at_k() {
        let (data, g) = line_graph(20);
        let mut buf = TraversalBuffer::new(20);
        assert_eq!(greedy_count(&g, &data, 10, 3.0, 4, &mut buf), 4);
    }

    #[test]
    fn k_zero_returns_zero() {
        let (data, g) = line_graph(5);
        let mut buf = TraversalBuffer::new(5);
        assert_eq!(greedy_count(&g, &data, 2, 10.0, 0, &mut buf), 0);
    }

    #[test]
    fn never_overcounts_lemma1() {
        let (data, g) = line_graph(30);
        let mut buf = TraversalBuffer::new(30);
        for p in 0..30 {
            for r in [0.5, 1.0, 2.5, 7.0] {
                let truth = (0..30).filter(|&j| j != p && data.dist(p, j) <= r).count();
                let got = greedy_count(&g, &data, p, r, usize::MAX, &mut buf);
                assert!(got <= truth, "p={p} r={r}: {got} > {truth}");
            }
        }
    }

    #[test]
    fn detour_blocks_reachability_without_pivot_rule() {
        // 0 at origin; 2 within r of 0 but only reachable through 1, which
        // is beyond r. Without pivot expansion the walk misses 2.
        let data = VectorSet::from_rows(&[vec![0.0], vec![10.0], vec![1.0]], L2);
        let mut g = ProximityGraph::new(3, GraphKind::KGraph);
        g.add_undirected(0, 1);
        g.add_undirected(1, 2);
        let mut buf = TraversalBuffer::new(3);
        assert_eq!(greedy_count(&g, &data, 0, 2.0, 10, &mut buf), 0);
    }

    #[test]
    fn pivot_rule_bridges_far_relays() {
        // Same topology, but vertex 1 is a pivot and the graph expands
        // pivots: vertex 2 becomes countable.
        let data = VectorSet::from_rows(&[vec![0.0], vec![10.0], vec![1.0]], L2);
        let mut g = ProximityGraph::new(3, GraphKind::Mrpg);
        g.add_undirected(0, 1);
        g.add_undirected(1, 2);
        g.pivot[1] = true;
        let mut buf = TraversalBuffer::new(3);
        assert_eq!(greedy_count(&g, &data, 0, 2.0, 10, &mut buf), 1);
    }

    #[test]
    fn isolated_vertex_counts_nothing() {
        let data = VectorSet::from_rows(&[vec![0.0], vec![0.1]], L2);
        let g = ProximityGraph::new(2, GraphKind::KGraph);
        let mut buf = TraversalBuffer::new(2);
        assert_eq!(greedy_count(&g, &data, 0, 1.0, 5, &mut buf), 0);
    }

    #[test]
    fn buffer_reuse_is_clean_across_queries() {
        let (data, g) = line_graph(15);
        let mut buf = TraversalBuffer::new(15);
        let a = greedy_count(&g, &data, 3, 2.0, 100, &mut buf);
        // Re-run the same query with the same buffer: same answer.
        let b = greedy_count(&g, &data, 3, 2.0, 100, &mut buf);
        assert_eq!(a, b);
        // And an unrelated query is unaffected by stale marks.
        assert_eq!(greedy_count(&g, &data, 12, 2.0, 100, &mut buf), 4);
    }

    #[test]
    fn collect_returns_exactly_the_reached_ids() {
        let (data, g) = line_graph(20);
        let mut buf = TraversalBuffer::new(20);
        let mut out = Vec::new();
        greedy_collect(&g, &data, 10, 3.0, usize::MAX, &mut buf, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![7, 8, 9, 11, 12, 13]);
    }

    #[test]
    fn collect_respects_the_limit() {
        let (data, g) = line_graph(20);
        let mut buf = TraversalBuffer::new(20);
        let mut out = Vec::new();
        greedy_collect(&g, &data, 10, 3.0, 2, &mut buf, &mut out);
        assert_eq!(out.len(), 2);
        let mut none = vec![99];
        greedy_collect(&g, &data, 10, 3.0, 0, &mut buf, &mut none);
        assert!(none.is_empty(), "limit 0 must clear and collect nothing");
    }

    #[test]
    fn collect_agrees_with_count() {
        let (data, g) = line_graph(30);
        let mut buf = TraversalBuffer::new(30);
        let mut out = Vec::new();
        for p in (0..30).step_by(5) {
            for r in [0.5, 2.0, 6.5] {
                greedy_collect(&g, &data, p, r, usize::MAX, &mut buf, &mut out);
                let counted = greedy_count(&g, &data, p, r, usize::MAX, &mut buf);
                assert_eq!(out.len(), counted, "p={p} r={r}");
                assert!(out.iter().all(|&w| data.dist(p, w as usize) <= r));
            }
        }
    }

    #[test]
    fn collect_honors_the_pivot_rule() {
        let data = VectorSet::from_rows(&[vec![0.0], vec![10.0], vec![1.0]], L2);
        let mut g = ProximityGraph::new(3, GraphKind::Mrpg);
        g.add_undirected(0, 1);
        g.add_undirected(1, 2);
        g.pivot[1] = true;
        let mut buf = TraversalBuffer::new(3);
        let mut out = Vec::new();
        greedy_collect(&g, &data, 0, 2.0, usize::MAX, &mut buf, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn buffer_pool_reuses_matching_sizes_only() {
        let pool = BufferPool::new();
        let mut b = pool.take(10);
        b.begin();
        assert!(b.mark(3));
        pool.put(b);
        let b2 = pool.take(10);
        assert_eq!(b2.visited.len(), 10, "same-size buffer must be reused");
        pool.put(b2);
        let b3 = pool.take(5);
        assert_eq!(b3.visited.len(), 5, "mismatched size must not be reused");
    }

    #[test]
    fn cost_tally_counts_dists_and_hops_across_walks() {
        let (data, g) = line_graph(20);
        let mut buf = TraversalBuffer::new(20);
        assert_eq!(buf.take_cost(), (0, 0));
        greedy_count(&g, &data, 10, 3.0, 100, &mut buf);
        let (d1, h1) = buf.take_cost();
        // From 10 with r=3 the walk evaluates each ball vertex (7..13)
        // plus the two boundary rejections (6 and 14), and expands every
        // in-ball vertex.
        assert_eq!(d1, 8);
        assert_eq!(h1, 7);
        // The tally accumulates across walks and drains to zero.
        greedy_count(&g, &data, 10, 3.0, 100, &mut buf);
        greedy_count(&g, &data, 10, 3.0, 100, &mut buf);
        assert_eq!(buf.take_cost(), (2 * d1, 2 * h1));
        assert_eq!(buf.take_cost(), (0, 0));
        // Early termination at k does less work than the full flood.
        greedy_count(&g, &data, 10, 3.0, 1, &mut buf);
        let (d_early, _) = buf.take_cost();
        assert!(d_early < d1, "{d_early} >= {d1}");
        // collect books the same flood cost as count.
        let mut out = Vec::new();
        greedy_collect(&g, &data, 10, 3.0, usize::MAX, &mut buf, &mut out);
        assert_eq!(buf.take_cost(), (d1, h1));
        // Manual booking rides the same tally.
        buf.note_dist(5);
        buf.note_hop(2);
        assert_eq!(buf.take_cost(), (5, 2));
    }

    #[test]
    fn epoch_wraparound_resets_marks() {
        let (data, g) = line_graph(4);
        let mut buf = TraversalBuffer::new(4);
        buf.epoch = u32::MAX - 1;
        let a = greedy_count(&g, &data, 1, 1.0, 100, &mut buf);
        let b = greedy_count(&g, &data, 1, 1.0, 100, &mut buf); // wraps here
        let c = greedy_count(&g, &data, 1, 1.0, 100, &mut buf);
        assert_eq!(a, 2);
        assert_eq!(b, 2);
        assert_eq!(c, 2);
    }
}
