//! Request-scoped tracing: spans, trace contexts and pluggable sinks.
//!
//! A serving layer builds one [`TraceContext`] per request, carries the
//! request id (taken from the client or generated here), records
//! [`Span`]s for the stages the request passes through — socket read,
//! queue wait, dispatch, filter, verify — and finally resolves the
//! context into an immutable [`Trace`] that flows to every configured
//! [`TraceSink`].
//!
//! The design is std-only and allocation-light on purpose: span names
//! and field keys are `&'static str`, durations are monotonic
//! ([`std::time::Instant`]) nanoseconds, and the only per-request heap
//! traffic is the span vector itself plus the id string. Nothing here
//! locks on the request path; the bundled [`TraceRing`] sink takes one
//! short mutex per *completed* request, never per span.
//!
//! ```
//! use dod_core::trace::{TraceContext, TraceRing, TraceSink};
//! use std::sync::Arc;
//!
//! let ring = TraceRing::new(8);
//! let mut ctx = TraceContext::new("req-1");
//! let span = ctx.child("filter").with_field("candidates", 12u64);
//! span.finish(&mut ctx);
//! ring.record(Arc::new(ctx.finish("/v1/query", 200)));
//! let traces = ring.snapshot();
//! assert_eq!(traces[0].spans[0].name, "filter");
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A typed span field value: counts, timings and static labels, kept as
/// an enum so sinks can render numbers as numbers (a JSON access log
/// must not quote a candidate count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// An unsigned count (candidates filtered, points verified, bytes).
    U64(u64),
    /// A floating-point measurement.
    F64(f64),
    /// A static label (backend names, phase outcomes).
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

/// One finished span inside a [`Trace`]: what happened, when relative to
/// the request's start, for how long, and its typed fields.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Stage name (`"read"`, `"queue_wait"`, `"filter"`, …).
    pub name: &'static str,
    /// Name of the enclosing span, when this one was opened with
    /// [`Span::child`].
    pub parent: Option<&'static str>,
    /// Monotonic offset from the trace's origin, in nanoseconds
    /// (clamped to the origin for spans that began before it, e.g. a
    /// queue wait).
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
    /// Typed key/value fields, in record order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// An in-flight span: created by [`TraceContext::child`] (or
/// [`Span::child`] for nesting), closed by [`Span::finish`], which
/// computes the monotonic duration and appends the [`SpanRecord`] to the
/// context.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    parent: Option<&'static str>,
    started: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span {
    /// Opens a sub-span that records this span as its parent.
    pub fn child(&self, name: &'static str) -> Span {
        Span {
            name,
            parent: Some(self.name),
            started: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Attaches a typed field (builder style).
    #[must_use]
    pub fn with_field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Span {
        self.fields.push((key, value.into()));
        self
    }

    /// Attaches a typed field in place.
    pub fn add_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        self.fields.push((key, value.into()));
    }

    /// Closes the span now and appends its record to `ctx`.
    pub fn finish(self, ctx: &mut TraceContext) {
        let duration = self.started.elapsed();
        ctx.push(self.name, self.parent, self.started, duration, self.fields);
    }
}

/// The per-request tracing state: the request id, the monotonic origin
/// every span offset is relative to, and the spans recorded so far.
/// Resolved into an immutable [`Trace`] by [`finish`](Self::finish).
#[derive(Debug)]
pub struct TraceContext {
    request_id: String,
    origin: Instant,
    spans: Vec<SpanRecord>,
}

impl TraceContext {
    /// A context whose clock starts now.
    pub fn new(request_id: impl Into<String>) -> Self {
        Self::starting_at(request_id, Instant::now())
    }

    /// A context whose clock started at `origin` (e.g. the instant the
    /// socket read began, captured before the request id was known).
    pub fn starting_at(request_id: impl Into<String>, origin: Instant) -> Self {
        TraceContext {
            request_id: request_id.into(),
            origin,
            spans: Vec::new(),
        }
    }

    /// The id this request is traced (and answered) under.
    pub fn request_id(&self) -> &str {
        &self.request_id
    }

    /// Opens a top-level span starting now.
    pub fn child(&self, name: &'static str) -> Span {
        Span {
            name,
            parent: None,
            started: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Records an already-elapsed stage ending now — the shape for
    /// durations measured elsewhere (a queue wait observed at dequeue, a
    /// filter phase timed inside the engine) that should still appear as
    /// spans of this trace.
    pub fn record(
        &mut self,
        name: &'static str,
        duration: Duration,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let end = Instant::now();
        let start = end.checked_sub(duration).unwrap_or(end);
        self.push(name, None, start, duration, fields);
    }

    fn push(
        &mut self,
        name: &'static str,
        parent: Option<&'static str>,
        started: Instant,
        duration: Duration,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let start_nanos = started
            .checked_duration_since(self.origin)
            .unwrap_or(Duration::ZERO)
            .as_nanos() as u64;
        self.spans.push(SpanRecord {
            name,
            parent,
            start_nanos,
            duration_nanos: duration.as_nanos() as u64,
            fields,
        });
    }

    /// Resolves the context into its immutable [`Trace`]: total duration
    /// measured from the origin to now, spans in record order.
    pub fn finish(self, route: &'static str, status: u16) -> Trace {
        Trace {
            request_id: self.request_id,
            route,
            status,
            duration_nanos: self.origin.elapsed().as_nanos() as u64,
            spans: self.spans,
        }
    }
}

/// One completed, immutable request trace — what sinks receive.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The id the request was answered under (`X-Request-Id`).
    pub request_id: String,
    /// The bounded-cardinality route label (a path pattern like
    /// `/v1/engines/{name}/query`, or a synthetic label like `<parse>`
    /// for requests rejected before routing).
    pub route: &'static str,
    /// The HTTP status answered.
    pub status: u16,
    /// End-to-end duration in nanoseconds, socket read to response
    /// written.
    pub duration_nanos: u64,
    /// The spans recorded along the way, in completion order.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// The span named `name`, if recorded.
    pub fn span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// A destination for completed traces. Implementations must be cheap —
/// `record` runs on the serving path, once per request.
pub trait TraceSink: Send + Sync {
    /// Accepts one completed trace (shared, so several sinks can hold
    /// the same trace without copying its spans).
    fn record(&self, trace: Arc<Trace>);
}

/// A bounded in-memory ring of the most recent completed traces — the
/// sink behind a debug endpoint. One short mutex around a `VecDeque` of
/// `Arc`s: push and evict are O(1), and a snapshot clones `Arc`s, not
/// spans.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<VecDeque<Arc<Trace>>>,
}

impl TraceRing {
    /// A ring keeping the `capacity` most recent traces (clamped to
    /// ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            capacity,
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The ring's bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<Arc<Trace>> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.iter().cloned().collect()
    }
}

impl TraceSink for TraceRing {
    fn record(&self, trace: Arc<Trace>) {
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if guard.len() == self.capacity {
            guard.pop_front();
        }
        guard.push_back(trace);
    }
}

/// Validates a client-supplied request id: 1–128 bytes of ASCII
/// letters, digits, `-`, `_`, `.` or `:` — safe to echo into a response
/// header, a JSON log line and a debug endpoint without escaping.
/// Anything else returns `None` and the server generates an id instead.
pub fn sanitize_request_id(raw: &str) -> Option<&str> {
    let ok = (1..=128).contains(&raw.len())
        && raw
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':'));
    ok.then_some(raw)
}

/// Generates a process-unique request id: a per-process random-ish seed
/// (wall clock ⊕ pid, fixed at first use) plus a monotone counter, so
/// ids are unique within a process and almost surely across restarts —
/// without any dependency on a randomness crate.
pub fn generate_request_id() -> String {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        // splitmix64 finalizer: spreads the timestamp bits so two close
        // restarts do not share a prefix.
        let mut z = nanos ^ (u64::from(std::process::id()) << 32);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{seed:016x}-{n:08x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_order_fields_and_parents() {
        let mut ctx = TraceContext::new("req-7");
        assert_eq!(ctx.request_id(), "req-7");
        let outer = ctx.child("dispatch");
        let inner = outer.child("engine").with_field("queries", 3usize);
        std::thread::sleep(Duration::from_millis(2));
        inner.finish(&mut ctx);
        outer.finish(&mut ctx);
        ctx.record(
            "filter",
            Duration::from_micros(250),
            vec![("candidates", FieldValue::U64(9))],
        );
        let trace = ctx.finish("/v1/query", 200);
        assert_eq!(trace.route, "/v1/query");
        assert_eq!(trace.status, 200);
        assert!(trace.duration_nanos >= 2_000_000);
        let engine = trace.span("engine").expect("recorded");
        assert_eq!(engine.parent, Some("dispatch"));
        assert_eq!(engine.fields, vec![("queries", FieldValue::U64(3))]);
        assert!(engine.duration_nanos >= 2_000_000);
        let dispatch = trace.span("dispatch").expect("recorded");
        assert!(dispatch.duration_nanos >= engine.duration_nanos);
        let filter = trace.span("filter").expect("recorded");
        assert_eq!(filter.duration_nanos, 250_000);
        assert_eq!(filter.parent, None);
    }

    #[test]
    fn recorded_durations_longer_than_the_trace_clamp_to_origin() {
        let mut ctx = TraceContext::new("r");
        // A queue wait that predates the trace origin must clamp its
        // start offset to zero, never underflow.
        ctx.record("queue_wait", Duration::from_secs(5), Vec::new());
        let trace = ctx.finish("/x", 200);
        assert_eq!(trace.span("queue_wait").unwrap().start_nanos, 0);
        assert_eq!(
            trace.span("queue_wait").unwrap().duration_nanos,
            5_000_000_000
        );
    }

    #[test]
    fn ring_keeps_the_most_recent_capacity_traces() {
        let ring = TraceRing::new(3);
        assert_eq!(ring.capacity(), 3);
        for i in 0..5u16 {
            let ctx = TraceContext::new(format!("req-{i}"));
            ring.record(Arc::new(ctx.finish("/x", 200 + i)));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        let ids: Vec<&str> = snap.iter().map(|t| t.request_id.as_str()).collect();
        assert_eq!(ids, ["req-2", "req-3", "req-4"], "oldest evicted first");
    }

    #[test]
    fn request_id_sanitization_is_strict() {
        assert_eq!(sanitize_request_id("abc-123_X.y:z"), Some("abc-123_X.y:z"));
        for bad in ["", "has space", "crlf\r\n", "quote\"", "emoji🎈", "näh"] {
            assert_eq!(sanitize_request_id(bad), None, "{bad:?} accepted");
        }
        let long = "a".repeat(129);
        assert_eq!(sanitize_request_id(&long), None, "length is capped");
        let ok = "a".repeat(128);
        assert!(sanitize_request_id(&ok).is_some());
    }

    #[test]
    fn generated_ids_are_unique_and_sanitizable() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let id = generate_request_id();
            assert!(sanitize_request_id(&id).is_some(), "{id:?}");
            assert!(seen.insert(id), "duplicate id generated");
        }
    }
}
