//! Strided parallel map: the paper's "random partitioning" load balancing.
//!
//! Outliers cost far more to evaluate than inliers (their early
//! termination never fires), and real outliers cluster in id ranges (our
//! generators plant them at the tail, real datasets have hot regions).
//! Chunked partitioning would hand one thread all the expensive objects;
//! strided (round-robin) assignment spreads them evenly, which is the
//! deterministic equivalent of the random partitioning §4 describes.

/// Computes `f(i)` for `i in 0..n` with `threads` workers in round-robin
/// assignment and returns results in index order. Deterministic for any
/// thread count (each index is computed exactly once, independently).
pub fn par_map_strided<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    // Clamp to the work available (as par_for_each_mut does): a thread
    // count beyond n would only spawn workers with empty strides.
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    // Each worker fills its own strided bucket; buckets are interleaved
    // back afterwards. No shared mutable state.
    let mut buckets: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                scope.spawn(move || (t..n).step_by(threads).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out = vec![T::default(); n];
    for (t, bucket) in buckets.iter_mut().enumerate() {
        for (j, v) in bucket.drain(..).enumerate() {
            out[t + j * threads] = v;
        }
    }
    out
}

/// Runs `f(i, &mut items[i])` for every item with `threads` workers, each
/// worker owning a contiguous chunk. The mutations are independent per
/// item, so the result is deterministic for any thread count.
///
/// This is the in-place companion of [`par_map_strided`] for state that
/// cannot be rebuilt from a return value — the sharded streaming engine
/// fans per-shard slide work (insert/expire/repair) over its shard array
/// with it.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 2 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, slab) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (off, item) in slab.iter_mut().enumerate() {
                    f(c * chunk + off, item);
                }
            });
        }
    });
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads consuming jobs from one bounded queue.
///
/// [`par_map_strided`] and [`par_for_each_mut`] fan a *known* workload
/// over scoped threads and join; a serving loop has the opposite shape —
/// an unbounded stream of independent jobs (connections) arriving one at
/// a time. The pool keeps `threads` long-lived workers behind a bounded
/// `sync_channel`, so a burst beyond `queue` pending jobs backpressures
/// the submitter (the accept loop) instead of buffering without limit.
///
/// A panicking job is caught and discarded: one poisoned request must not
/// take a worker (and eventually the whole pool) down with it.
pub struct WorkerPool {
    tx: Option<std::sync::mpsc::SyncSender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to ≥ 1) sharing a queue of
    /// `queue` pending jobs (clamped to ≥ 1).
    pub fn new(threads: usize, queue: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(queue.max(1));
        let rx = std::sync::Arc::new(std::sync::Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = std::sync::Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Hold the lock only for the dequeue, never the job.
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(poisoned) => poisoned.into_inner().recv(),
                    };
                    match job {
                        Ok(job) => {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                        Err(_) => break, // pool dropped: queue drained, exit
                    }
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job, blocking while the queue is full. Returns `false`
    /// only when the pool is shutting down.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }
}

impl Drop for WorkerPool {
    /// Graceful shutdown: closes the queue (workers finish what is
    /// pending) and joins every worker.
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential() {
        let seq = par_map_strided(100, 1, |i| i * 3);
        let par = par_map_strided(100, 4, |i| i * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_tiny() {
        assert!(par_map_strided(0, 3, |i| i).is_empty());
        assert_eq!(par_map_strided(1, 3, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map_strided(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn preserves_index_order() {
        let out = par_map_strided(37, 5, |i| i as u64);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for threads in [1, 3, 8, 64] {
            let mut items: Vec<usize> = (0..23).collect();
            par_for_each_mut(&mut items, threads, |i, v| {
                assert_eq!(i, *v, "index passed to f matches the slot");
                *v += 100;
            });
            assert!(items.iter().enumerate().all(|(i, &v)| v == i + 100));
        }
    }

    #[test]
    fn for_each_mut_empty_and_single() {
        let mut empty: Vec<u8> = Vec::new();
        par_for_each_mut(&mut empty, 4, |_, _| unreachable!());
        let mut one = vec![7u8];
        par_for_each_mut(&mut one, 4, |_, v| *v = 9);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn worker_pool_runs_every_job_and_joins_on_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(3, 4);
            assert_eq!(pool.threads(), 3);
            for _ in 0..50 {
                let done = Arc::clone(&done);
                assert!(pool.execute(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }));
            }
        } // drop = drain + join
        assert_eq!(done.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn worker_pool_survives_panicking_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1, 2);
            assert!(pool.execute(|| panic!("poisoned request")));
            let done = Arc::clone(&done);
            assert!(pool.execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker outlived the panic");
    }
}
