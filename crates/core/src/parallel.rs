//! Strided parallel map: the paper's "random partitioning" load balancing.
//!
//! Outliers cost far more to evaluate than inliers (their early
//! termination never fires), and real outliers cluster in id ranges (our
//! generators plant them at the tail, real datasets have hot regions).
//! Chunked partitioning would hand one thread all the expensive objects;
//! strided (round-robin) assignment spreads them evenly, which is the
//! deterministic equivalent of the random partitioning §4 describes.

/// Computes `f(i)` for `i in 0..n` with `threads` workers in round-robin
/// assignment and returns results in index order. Deterministic for any
/// thread count (each index is computed exactly once, independently).
pub fn par_map_strided<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    // Each worker fills its own strided bucket; buckets are interleaved
    // back afterwards. No shared mutable state.
    let mut buckets: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                scope.spawn(move || (t..n).step_by(threads).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out = vec![T::default(); n];
    for (t, bucket) in buckets.iter_mut().enumerate() {
        for (j, v) in bucket.drain(..).enumerate() {
            out[t + j * threads] = v;
        }
    }
    out
}

/// Runs `f(i, &mut items[i])` for every item with `threads` workers, each
/// worker owning a contiguous chunk. The mutations are independent per
/// item, so the result is deterministic for any thread count.
///
/// This is the in-place companion of [`par_map_strided`] for state that
/// cannot be rebuilt from a return value — the sharded streaming engine
/// fans per-shard slide work (insert/expire/repair) over its shard array
/// with it.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 2 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, slab) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (off, item) in slab.iter_mut().enumerate() {
                    f(c * chunk + off, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential() {
        let seq = par_map_strided(100, 1, |i| i * 3);
        let par = par_map_strided(100, 4, |i| i * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_tiny() {
        assert!(par_map_strided(0, 3, |i| i).is_empty());
        assert_eq!(par_map_strided(1, 3, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map_strided(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn preserves_index_order() {
        let out = par_map_strided(37, 5, |i| i as u64);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for threads in [1, 3, 8, 64] {
            let mut items: Vec<usize> = (0..23).collect();
            par_for_each_mut(&mut items, threads, |i, v| {
                assert_eq!(i, *v, "index passed to f matches the slot");
                *v += 100;
            });
            assert!(items.iter().enumerate().all(|(i, &v)| v == i + 100));
        }
    }

    #[test]
    fn for_each_mut_empty_and_single() {
        let mut empty: Vec<u8> = Vec::new();
        par_for_each_mut(&mut empty, 4, |_, _| unreachable!());
        let mut one = vec![7u8];
        par_for_each_mut(&mut one, 4, |_, v| *v = 9);
        assert_eq!(one, vec![9]);
    }
}
