//! Strided parallel map: the paper's "random partitioning" load balancing.
//!
//! Outliers cost far more to evaluate than inliers (their early
//! termination never fires), and real outliers cluster in id ranges (our
//! generators plant them at the tail, real datasets have hot regions).
//! Chunked partitioning would hand one thread all the expensive objects;
//! strided (round-robin) assignment spreads them evenly, which is the
//! deterministic equivalent of the random partitioning §4 describes.

/// Computes `f(i)` for `i in 0..n` with `threads` workers in round-robin
/// assignment and returns results in index order. Deterministic for any
/// thread count (each index is computed exactly once, independently).
pub fn par_map_strided<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    // Clamp to the work available (as par_for_each_mut does): a thread
    // count beyond n would only spawn workers with empty strides.
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    // Each worker fills its own strided bucket; buckets are interleaved
    // back afterwards. No shared mutable state.
    let mut buckets: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                scope.spawn(move || (t..n).step_by(threads).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out = vec![T::default(); n];
    for (t, bucket) in buckets.iter_mut().enumerate() {
        for (j, v) in bucket.drain(..).enumerate() {
            out[t + j * threads] = v;
        }
    }
    out
}

/// Runs `f(i, &mut items[i])` for every item with `threads` workers, each
/// worker owning a contiguous chunk. The mutations are independent per
/// item, so the result is deterministic for any thread count.
///
/// This is the in-place companion of [`par_map_strided`] for state that
/// cannot be rebuilt from a return value — the sharded streaming engine
/// fans per-shard slide work (insert/expire/repair) over its shard array
/// with it.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 2 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, slab) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (off, item) in slab.iter_mut().enumerate() {
                    f(c * chunk + off, item);
                }
            });
        }
    });
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Live saturation gauges of a [`WorkerPool`], shared with scrapers via
/// `Arc` so a metrics endpoint can read them without touching the pool.
///
/// All counters are relaxed: the gauges are monitoring signals, not
/// synchronization edges, and a scrape may observe a job as neither
/// queued nor busy (or, briefly, both) while it moves between states.
#[derive(Debug)]
pub struct PoolStats {
    queued: std::sync::atomic::AtomicU64,
    busy: std::sync::atomic::AtomicU64,
    workers: u64,
}

impl PoolStats {
    fn new(workers: u64) -> Self {
        PoolStats {
            queued: std::sync::atomic::AtomicU64::new(0),
            busy: std::sync::atomic::AtomicU64::new(0),
            workers,
        }
    }

    /// Jobs submitted but not yet started (a submitter blocked on the
    /// full channel counts too, so this can read queue-capacity + 1).
    pub fn queue_depth(&self) -> u64 {
        self.queued.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Workers currently running a job.
    pub fn busy_workers(&self) -> u64 {
        self.busy.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total workers in the pool (constant over its lifetime).
    pub fn workers(&self) -> u64 {
        self.workers
    }
}

/// A fixed pool of worker threads consuming jobs from one bounded queue.
///
/// [`par_map_strided`] and [`par_for_each_mut`] fan a *known* workload
/// over scoped threads and join; a serving loop has the opposite shape —
/// an unbounded stream of independent jobs (connections) arriving one at
/// a time. The pool keeps `threads` long-lived workers behind a bounded
/// `sync_channel`, so a burst beyond `queue` pending jobs backpressures
/// the submitter (the accept loop) instead of buffering without limit.
///
/// A panicking job is caught and discarded: one poisoned request must not
/// take a worker (and eventually the whole pool) down with it.
pub struct WorkerPool {
    tx: Option<std::sync::mpsc::SyncSender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stats: std::sync::Arc<PoolStats>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to ≥ 1) sharing a queue of
    /// `queue` pending jobs (clamped to ≥ 1).
    pub fn new(threads: usize, queue: usize) -> Self {
        let threads = threads.max(1);
        let stats = std::sync::Arc::new(PoolStats::new(threads as u64));
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(queue.max(1));
        let rx = std::sync::Arc::new(std::sync::Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = std::sync::Arc::clone(&rx);
                let stats = std::sync::Arc::clone(&stats);
                std::thread::spawn(move || loop {
                    // Hold the lock only for the dequeue, never the job.
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(poisoned) => poisoned.into_inner().recv(),
                    };
                    match job {
                        Ok(job) => {
                            use std::sync::atomic::Ordering::Relaxed;
                            stats.queued.fetch_sub(1, Relaxed);
                            stats.busy.fetch_add(1, Relaxed);
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            stats.busy.fetch_sub(1, Relaxed);
                        }
                        Err(_) => break, // pool dropped: queue drained, exit
                    }
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            stats,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The pool's live saturation gauges, shareable with a scraper.
    pub fn stats(&self) -> std::sync::Arc<PoolStats> {
        std::sync::Arc::clone(&self.stats)
    }

    /// Submits a job, blocking while the queue is full. Returns `false`
    /// only when the pool is shutting down.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        use std::sync::atomic::Ordering::Relaxed;
        match &self.tx {
            Some(tx) => {
                // Count before the (possibly blocking) send so a full
                // queue shows up as depth > capacity, not as depth 0.
                self.stats.queued.fetch_add(1, Relaxed);
                let ok = tx.send(Box::new(job)).is_ok();
                if !ok {
                    self.stats.queued.fetch_sub(1, Relaxed);
                }
                ok
            }
            None => false,
        }
    }
}

impl Drop for WorkerPool {
    /// Graceful shutdown: closes the queue (workers finish what is
    /// pending) and joins every worker.
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential() {
        let seq = par_map_strided(100, 1, |i| i * 3);
        let par = par_map_strided(100, 4, |i| i * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_tiny() {
        assert!(par_map_strided(0, 3, |i| i).is_empty());
        assert_eq!(par_map_strided(1, 3, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map_strided(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn preserves_index_order() {
        let out = par_map_strided(37, 5, |i| i as u64);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for threads in [1, 3, 8, 64] {
            let mut items: Vec<usize> = (0..23).collect();
            par_for_each_mut(&mut items, threads, |i, v| {
                assert_eq!(i, *v, "index passed to f matches the slot");
                *v += 100;
            });
            assert!(items.iter().enumerate().all(|(i, &v)| v == i + 100));
        }
    }

    #[test]
    fn for_each_mut_empty_and_single() {
        let mut empty: Vec<u8> = Vec::new();
        par_for_each_mut(&mut empty, 4, |_, _| unreachable!());
        let mut one = vec![7u8];
        par_for_each_mut(&mut one, 4, |_, v| *v = 9);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn worker_pool_runs_every_job_and_joins_on_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(3, 4);
            assert_eq!(pool.threads(), 3);
            for _ in 0..50 {
                let done = Arc::clone(&done);
                assert!(pool.execute(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }));
            }
        } // drop = drain + join
        assert_eq!(done.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn worker_pool_stats_track_queue_and_busy_workers() {
        use std::sync::atomic::Ordering;
        use std::sync::{Arc, Barrier};
        let pool = WorkerPool::new(1, 4);
        let stats = pool.stats();
        assert_eq!(stats.workers(), 1);
        assert_eq!(stats.busy_workers(), 0);
        assert_eq!(stats.queue_depth(), 0);
        // Gate the single worker so one job is busy and one is queued.
        let gate = Arc::new(Barrier::new(2));
        let entered = Arc::new(Barrier::new(2));
        {
            let gate = Arc::clone(&gate);
            let entered = Arc::clone(&entered);
            assert!(pool.execute(move || {
                entered.wait();
                gate.wait();
            }));
        }
        entered.wait(); // the worker is now inside the job
        assert!(pool.execute(|| {}));
        assert_eq!(stats.busy_workers(), 1, "gated job occupies the worker");
        assert_eq!(stats.queue_depth(), 1, "second job waits in the queue");
        gate.wait();
        drop(pool); // drain + join
        assert_eq!(stats.busy_workers(), 0);
        assert_eq!(stats.queue_depth(), 0);
        // The counters never wrapped (fetch_sub underflow would leave
        // huge values behind).
        assert!(stats.queued.load(Ordering::Relaxed) < u64::MAX / 2);
    }

    #[test]
    fn worker_pool_survives_panicking_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1, 2);
            assert!(pool.execute(|| panic!("poisoned request")));
            let done = Arc::clone(&done);
            assert!(pool.execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker outlived the panic");
    }
}
