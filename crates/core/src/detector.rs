//! The pre-[`Engine`](crate::Engine) unified front door, kept for one
//! release as a thin shim.
//!
//! [`Detector`] erased the per-algorithm construction differences behind
//! one `detect` call. [`Engine`](crate::Engine) replaces it for the
//! indexed algorithms (graphs, VP-tree, nested loop); the per-query-index
//! baselines SNIF and DOLPHIN remain available as the free functions
//! [`crate::snif::detect`] and [`crate::dolphin::detect`].

#![allow(deprecated)]

use crate::graph_dod::GraphDod;
use crate::params::{DodParams, OutlierReport};
use crate::vptree_dod::VpTreeDod;
use crate::{dolphin, nested_loop, snif};
use dod_metrics::Dataset;

/// Any of the workspace's exact DOD algorithms, ready to answer queries.
#[deprecated(
    since = "0.2.0",
    note = "use dod_core::Engine; SNIF/DOLPHIN remain as free functions"
)]
pub enum Detector<'g> {
    /// Randomized nested loop (no index).
    NestedLoop {
        /// Scan-order seed (does not affect results).
        seed: u64,
    },
    /// SNIF r/2-clustering (index built per query, as in the paper).
    Snif {
        /// Clustering seed (does not affect results).
        seed: u64,
    },
    /// DOLPHIN two-scan candidate index (built per query).
    Dolphin {
        /// Retention seed (does not affect results).
        seed: u64,
    },
    /// VP-tree range counting over a prebuilt tree.
    VpTree(VpTreeDod),
    /// Proximity-graph filter/verify (Algorithm 1) over a prebuilt graph.
    Graph(GraphDod<'g>),
}

impl Detector<'_> {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Detector::NestedLoop { .. } => "Nested-loop",
            Detector::Snif { .. } => "SNIF",
            Detector::Dolphin { .. } => "DOLPHIN",
            Detector::VpTree(_) => "VP-tree",
            Detector::Graph(g) => g.graph().kind.name(),
        }
    }

    /// Runs the query. Every variant returns the identical exact outlier
    /// set (enforced by the cross-algorithm test suite).
    pub fn detect<D: Dataset + ?Sized>(&self, data: &D, params: &DodParams) -> OutlierReport {
        match self {
            Detector::NestedLoop { seed } => nested_loop::detect(data, params, *seed),
            Detector::Snif { seed } => snif::detect(data, params, *seed),
            Detector::Dolphin { seed } => dolphin::detect(data, params, *seed),
            Detector::VpTree(vp) => vp.detect(data, params),
            Detector::Graph(g) => g.detect(data, params),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_graph::MrpgParams;
    use dod_metrics::{VectorSet, L2};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_data(n: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                if i % 37 == 36 {
                    vec![rng.gen_range(40.0f32..80.0), rng.gen_range(40.0f32..80.0)]
                } else {
                    let c = (i % 3) as f32 * 6.0;
                    vec![c + rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)]
                }
            })
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn all_variants_agree() {
        let data = blob_data(300, 1);
        let params = DodParams::new(1.5, 4);
        let (graph, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(6));
        let detectors = [
            Detector::NestedLoop { seed: 0 },
            Detector::Snif { seed: 1 },
            Detector::Dolphin { seed: 2 },
            Detector::VpTree(VpTreeDod::build(&data, 3)),
            Detector::Graph(GraphDod::new(&graph)),
        ];
        let reference = detectors[0].detect(&data, &params).outliers;
        assert!(!reference.is_empty());
        for d in &detectors[1..] {
            assert_eq!(d.detect(&data, &params).outliers, reference, "{}", d.name());
        }
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(Detector::NestedLoop { seed: 0 }.name(), "Nested-loop");
        assert_eq!(Detector::Snif { seed: 0 }.name(), "SNIF");
        assert_eq!(Detector::Dolphin { seed: 0 }.name(), "DOLPHIN");
        let data = blob_data(50, 2);
        assert_eq!(
            Detector::VpTree(VpTreeDod::build(&data, 0)).name(),
            "VP-tree"
        );
        let (graph, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(4));
        assert_eq!(Detector::Graph(GraphDod::new(&graph)).name(), "MRPG");
    }
}
