//! Shared parameter, query and result types for every DOD algorithm.

use crate::error::DodError;

/// The `(r, k)` query of Definition 2 plus an execution thread count.
///
/// This is the plain parameter carrier the algorithm *functions*
/// ([`crate::nested_loop`], [`crate::snif`], [`crate::dolphin`]) take; the
/// [`Engine`](crate::Engine) front door takes the validated [`Query`]
/// instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DodParams {
    /// Distance threshold: a neighbor of `p` is any `p' ≠ p` with
    /// `dist(p, p') ≤ r`.
    pub r: f64,
    /// Count threshold: `p` is an outlier iff it has fewer than `k`
    /// neighbors. `k = 0` therefore means no object can be an outlier.
    pub k: usize,
    /// Worker threads for the parallel-friendly algorithms.
    pub threads: usize,
}

impl DodParams {
    /// Single-threaded parameters.
    pub fn new(r: f64, k: usize) -> Self {
        DodParams { r, k, threads: 1 }
    }

    /// Sets the thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Validates the query, surfacing a negative or NaN radius as
    /// [`DodError::InvalidRadius`] instead of panicking.
    pub fn validate(&self) -> Result<(), DodError> {
        if self.r >= 0.0 && self.r.is_finite() {
            Ok(())
        } else {
            Err(DodError::InvalidRadius { r: self.r })
        }
    }
}

/// Panics with the error's `Display` text — the free-function baselines
/// (`nested_loop`, `snif`, `dolphin`) keep this documented panic contract;
/// the [`Engine`](crate::Engine) path validates at [`Query`] construction
/// instead.
pub(crate) fn assert_valid(params: &DodParams) {
    if let Err(e) = params.validate() {
        panic!("{e}");
    }
}

/// A validated `(r, k)` outlier query for [`Engine::query`](crate::Engine::query).
///
/// Construction is the validation boundary: a [`Query`] that exists is
/// well-formed, so nothing downstream of it can panic on bad input.
///
/// ```
/// use dod_core::Query;
/// let q = Query::new(2.5, 10)?.with_threads(4);
/// assert_eq!((q.r(), q.k(), q.threads()), (2.5, 10, Some(4)));
/// assert!(Query::new(f64::NAN, 10).is_err());
/// # Ok::<(), dod_core::DodError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    r: f64,
    k: usize,
    threads: Option<usize>,
}

impl Query {
    /// A query with the engine's default thread count.
    ///
    /// Returns [`DodError::InvalidRadius`] when `r` is negative or not
    /// finite.
    pub fn new(r: f64, k: usize) -> Result<Self, DodError> {
        DodParams::new(r, k).validate()?;
        Ok(Query {
            r,
            k,
            threads: None,
        })
    }

    /// Overrides the engine's thread count for this query (clamped to at
    /// least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The distance threshold.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// The neighbor-count threshold.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The per-query thread override, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }
}

/// Per-query cost accounting: how many distance evaluations and graph
/// hops the answer burned, split by phase — the paper's central
/// evaluation currency (its "pruning power" metric is exactly
/// `1 − dist_evals / n(n−1)`).
///
/// Counts cover the query itself: filter walks, verification range
/// counts and — on the streaming side — insert/expiry discovery.
/// One-time amortized engine state (index construction, the lazily
/// built verification engine and its TwoNN sampling) is deliberately
/// *excluded*, so the same query costs the same whether it is the
/// engine's first or thousandth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostReport {
    /// Distance evaluations spent in the filtering phase (greedy graph
    /// walks). Zero for filter-less algorithms.
    pub filter_dist_evals: u64,
    /// Distance evaluations spent verifying candidates (the whole
    /// detection for filter-less algorithms).
    pub verify_dist_evals: u64,
    /// Graph vertices expanded (queue pops) across every traversal.
    /// Zero for graph-less algorithms.
    pub hops: u64,
}

impl CostReport {
    /// All distance evaluations, both phases.
    pub fn total_dist_evals(&self) -> u64 {
        self.filter_dist_evals + self.verify_dist_evals
    }

    /// Live pruning power against the nested-loop baseline `n·(n−1)`
    /// (the paper's Table 7 metric): 1.0 means no distances at all,
    /// 0.0 means brute force. Zero when `n < 2` (no baseline exists).
    pub fn pruning_power(&self, n: usize) -> f64 {
        if n < 2 {
            return 0.0;
        }
        let baseline = n as f64 * (n as f64 - 1.0);
        (1.0 - self.total_dist_evals() as f64 / baseline).max(0.0)
    }

    /// Accumulates another report's counts into this one.
    pub fn absorb(&mut self, other: &CostReport) {
        self.filter_dist_evals += other.filter_dist_evals;
        self.verify_dist_evals += other.verify_dist_evals;
        self.hops += other.hops;
    }
}

/// The unified answer of a DOD query — one result shape for every engine,
/// batch or streaming.
///
/// Subsumes the former `DodResult` (outliers + total time) and
/// `GraphDodReport` (outliers + the phase decomposition of the paper's
/// Tables 7 and 8). Algorithms without a filtering phase (nested loop,
/// SNIF, DOLPHIN, VP-tree range counting) report their whole cost as
/// `verify_secs` and leave the filter accounting at zero.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierReport {
    /// Ids of all outliers, ascending.
    pub outliers: Vec<u32>,
    /// Objects whose filter count stayed below `k` (`|P'|`, the
    /// verification workload). Zero for filter-less algorithms.
    pub candidates: usize,
    /// Candidates that verification re-classified as inliers — the paper's
    /// `f` (Table 7). Lower is better; MRPG's whole design minimizes this.
    pub false_positives: usize,
    /// Outliers decided during filtering by the exact-`K'` shortcut
    /// (0 unless the index is a full MRPG).
    pub decided_in_filter: usize,
    /// Wall-clock seconds of the filtering phase.
    pub filter_secs: f64,
    /// Wall-clock seconds of the verification phase (the whole detection
    /// for filter-less algorithms).
    pub verify_secs: f64,
    /// Distance evaluations and graph hops the query burned, by phase.
    pub cost: CostReport,
}

impl OutlierReport {
    /// Builds a filter-less report from an unsorted outlier list: the
    /// whole cost lands in `verify_secs`.
    pub fn from_outliers(mut outliers: Vec<u32>, total_secs: f64) -> Self {
        outliers.sort_unstable();
        OutlierReport {
            outliers,
            candidates: 0,
            false_positives: 0,
            decided_in_filter: 0,
            filter_secs: 0.0,
            verify_secs: total_secs,
            cost: CostReport::default(),
        }
    }

    /// Total detection time (Table 5's "running time").
    pub fn total_secs(&self) -> f64 {
        self.filter_secs + self.verify_secs
    }

    /// Number of outliers found (`t` in the paper's analysis).
    pub fn count(&self) -> usize {
        self.outliers.len()
    }

    /// Outlier ratio relative to a dataset of size `n`.
    pub fn ratio(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.count() as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sorts_outliers() {
        let r = OutlierReport::from_outliers(vec![5, 1, 3], 0.1);
        assert_eq!(r.outliers, vec![1, 3, 5]);
        assert_eq!(r.count(), 3);
        assert_eq!(r.total_secs(), 0.1);
    }

    #[test]
    fn cost_report_pruning_power_and_absorb() {
        let mut c = CostReport {
            filter_dist_evals: 30,
            verify_dist_evals: 60,
            hops: 12,
        };
        assert_eq!(c.total_dist_evals(), 90);
        // n=10 baseline is 90: every pair evaluated → zero pruning power.
        assert_eq!(c.pruning_power(10), 0.0);
        // n=100 baseline is 9900.
        assert!((c.pruning_power(100) - (1.0 - 90.0 / 9900.0)).abs() < 1e-12);
        // Degenerate datasets have no baseline.
        assert_eq!(c.pruning_power(0), 0.0);
        assert_eq!(c.pruning_power(1), 0.0);
        // More evals than the baseline clamps at zero, never negative.
        let greedy = CostReport {
            filter_dist_evals: 1000,
            verify_dist_evals: 0,
            hops: 0,
        };
        assert_eq!(greedy.pruning_power(10), 0.0);
        c.absorb(&greedy);
        assert_eq!(c.filter_dist_evals, 1030);
        assert_eq!(c.verify_dist_evals, 60);
        assert_eq!(c.hops, 12);
        assert_eq!(CostReport::default().total_dist_evals(), 0);
    }

    #[test]
    fn ratio_handles_empty_dataset() {
        let r = OutlierReport::from_outliers(vec![], 0.0);
        assert_eq!(r.ratio(0), 0.0);
        assert_eq!(r.ratio(10), 0.0);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        let p = DodParams::new(1.0, 5).with_threads(0);
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn negative_r_is_rejected() {
        let err = DodParams::new(-1.0, 5).validate().unwrap_err();
        assert!(matches!(err, DodError::InvalidRadius { .. }));
        assert!(Query::new(-1.0, 5).is_err());
    }

    #[test]
    fn nan_r_is_rejected() {
        assert!(DodParams::new(f64::NAN, 5).validate().is_err());
        assert!(Query::new(f64::NAN, 5).is_err());
        assert!(Query::new(f64::INFINITY, 5).is_err());
    }

    #[test]
    fn valid_queries_construct() {
        let q = Query::new(0.0, 0).expect("r = 0, k = 0 is a legal query");
        assert_eq!(q.threads(), None);
        assert_eq!(q.with_threads(0).threads(), Some(1));
    }
}
