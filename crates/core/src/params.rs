//! Shared parameter and result types for every DOD algorithm.

/// The `(r, k)` query of Definition 2 plus an execution thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DodParams {
    /// Distance threshold: a neighbor of `p` is any `p' ≠ p` with
    /// `dist(p, p') ≤ r`.
    pub r: f64,
    /// Count threshold: `p` is an outlier iff it has fewer than `k`
    /// neighbors. `k = 0` therefore means no object can be an outlier.
    pub k: usize,
    /// Worker threads for the parallel-friendly algorithms.
    pub threads: usize,
}

impl DodParams {
    /// Single-threaded parameters.
    pub fn new(r: f64, k: usize) -> Self {
        DodParams { r, k, threads: 1 }
    }

    /// Sets the thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Validates the query against a dataset size.
    ///
    /// # Panics
    /// Panics if `r` is negative or NaN.
    pub fn validate(&self) {
        assert!(
            self.r >= 0.0 && self.r.is_finite(),
            "r must be a finite non-negative number, got {}",
            self.r
        );
    }
}

/// The answer of a DOD query plus basic timing.
#[derive(Debug, Clone)]
pub struct DodResult {
    /// Ids of all outliers, ascending.
    pub outliers: Vec<u32>,
    /// Total detection wall-clock seconds.
    pub total_secs: f64,
}

impl DodResult {
    /// Builds a result from an unsorted outlier list.
    pub fn new(mut outliers: Vec<u32>, total_secs: f64) -> Self {
        outliers.sort_unstable();
        DodResult {
            outliers,
            total_secs,
        }
    }

    /// Number of outliers found (`t` in the paper's analysis).
    pub fn count(&self) -> usize {
        self.outliers.len()
    }

    /// Outlier ratio relative to a dataset of size `n`.
    pub fn ratio(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.count() as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_sorts_outliers() {
        let r = DodResult::new(vec![5, 1, 3], 0.1);
        assert_eq!(r.outliers, vec![1, 3, 5]);
        assert_eq!(r.count(), 3);
    }

    #[test]
    fn ratio_handles_empty_dataset() {
        let r = DodResult::new(vec![], 0.0);
        assert_eq!(r.ratio(0), 0.0);
        assert_eq!(r.ratio(10), 0.0);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        let p = DodParams::new(1.0, 5).with_threads(0);
        assert_eq!(p.threads, 1);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_r_is_rejected() {
        DodParams::new(-1.0, 5).validate();
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn nan_r_is_rejected() {
        DodParams::new(f64::NAN, 5).validate();
    }
}
