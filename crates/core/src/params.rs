//! Shared parameter, query and result types for every DOD algorithm.

use crate::error::DodError;

/// The `(r, k)` query of Definition 2 plus an execution thread count.
///
/// This is the plain parameter carrier the algorithm *functions*
/// ([`crate::nested_loop`], [`crate::snif`], [`crate::dolphin`]) take; the
/// [`Engine`](crate::Engine) front door takes the validated [`Query`]
/// instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DodParams {
    /// Distance threshold: a neighbor of `p` is any `p' ≠ p` with
    /// `dist(p, p') ≤ r`.
    pub r: f64,
    /// Count threshold: `p` is an outlier iff it has fewer than `k`
    /// neighbors. `k = 0` therefore means no object can be an outlier.
    pub k: usize,
    /// Worker threads for the parallel-friendly algorithms.
    pub threads: usize,
}

impl DodParams {
    /// Single-threaded parameters.
    pub fn new(r: f64, k: usize) -> Self {
        DodParams { r, k, threads: 1 }
    }

    /// Sets the thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Validates the query, surfacing a negative or NaN radius as
    /// [`DodError::InvalidRadius`] instead of panicking.
    pub fn validate(&self) -> Result<(), DodError> {
        if self.r >= 0.0 && self.r.is_finite() {
            Ok(())
        } else {
            Err(DodError::InvalidRadius { r: self.r })
        }
    }
}

/// Panics with the error's `Display` text — the free-function baselines
/// (`nested_loop`, `snif`, `dolphin`) keep this documented panic contract;
/// the [`Engine`](crate::Engine) path validates at [`Query`] construction
/// instead.
pub(crate) fn assert_valid(params: &DodParams) {
    if let Err(e) = params.validate() {
        panic!("{e}");
    }
}

/// A validated `(r, k)` outlier query for [`Engine::query`](crate::Engine::query).
///
/// Construction is the validation boundary: a [`Query`] that exists is
/// well-formed, so nothing downstream of it can panic on bad input.
///
/// ```
/// use dod_core::Query;
/// let q = Query::new(2.5, 10)?.with_threads(4);
/// assert_eq!((q.r(), q.k(), q.threads()), (2.5, 10, Some(4)));
/// assert!(Query::new(f64::NAN, 10).is_err());
/// # Ok::<(), dod_core::DodError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    r: f64,
    k: usize,
    threads: Option<usize>,
}

impl Query {
    /// A query with the engine's default thread count.
    ///
    /// Returns [`DodError::InvalidRadius`] when `r` is negative or not
    /// finite.
    pub fn new(r: f64, k: usize) -> Result<Self, DodError> {
        DodParams::new(r, k).validate()?;
        Ok(Query {
            r,
            k,
            threads: None,
        })
    }

    /// Overrides the engine's thread count for this query (clamped to at
    /// least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The distance threshold.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// The neighbor-count threshold.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The per-query thread override, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }
}

/// The unified answer of a DOD query — one result shape for every engine,
/// batch or streaming.
///
/// Subsumes the former `DodResult` (outliers + total time) and
/// `GraphDodReport` (outliers + the phase decomposition of the paper's
/// Tables 7 and 8). Algorithms without a filtering phase (nested loop,
/// SNIF, DOLPHIN, VP-tree range counting) report their whole cost as
/// `verify_secs` and leave the filter accounting at zero.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierReport {
    /// Ids of all outliers, ascending.
    pub outliers: Vec<u32>,
    /// Objects whose filter count stayed below `k` (`|P'|`, the
    /// verification workload). Zero for filter-less algorithms.
    pub candidates: usize,
    /// Candidates that verification re-classified as inliers — the paper's
    /// `f` (Table 7). Lower is better; MRPG's whole design minimizes this.
    pub false_positives: usize,
    /// Outliers decided during filtering by the exact-`K'` shortcut
    /// (0 unless the index is a full MRPG).
    pub decided_in_filter: usize,
    /// Wall-clock seconds of the filtering phase.
    pub filter_secs: f64,
    /// Wall-clock seconds of the verification phase (the whole detection
    /// for filter-less algorithms).
    pub verify_secs: f64,
}

impl OutlierReport {
    /// Builds a filter-less report from an unsorted outlier list: the
    /// whole cost lands in `verify_secs`.
    pub fn from_outliers(mut outliers: Vec<u32>, total_secs: f64) -> Self {
        outliers.sort_unstable();
        OutlierReport {
            outliers,
            candidates: 0,
            false_positives: 0,
            decided_in_filter: 0,
            filter_secs: 0.0,
            verify_secs: total_secs,
        }
    }

    /// Total detection time (Table 5's "running time").
    pub fn total_secs(&self) -> f64 {
        self.filter_secs + self.verify_secs
    }

    /// Number of outliers found (`t` in the paper's analysis).
    pub fn count(&self) -> usize {
        self.outliers.len()
    }

    /// Outlier ratio relative to a dataset of size `n`.
    pub fn ratio(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.count() as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sorts_outliers() {
        let r = OutlierReport::from_outliers(vec![5, 1, 3], 0.1);
        assert_eq!(r.outliers, vec![1, 3, 5]);
        assert_eq!(r.count(), 3);
        assert_eq!(r.total_secs(), 0.1);
    }

    #[test]
    fn ratio_handles_empty_dataset() {
        let r = OutlierReport::from_outliers(vec![], 0.0);
        assert_eq!(r.ratio(0), 0.0);
        assert_eq!(r.ratio(10), 0.0);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        let p = DodParams::new(1.0, 5).with_threads(0);
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn negative_r_is_rejected() {
        let err = DodParams::new(-1.0, 5).validate().unwrap_err();
        assert!(matches!(err, DodError::InvalidRadius { .. }));
        assert!(Query::new(-1.0, 5).is_err());
    }

    #[test]
    fn nan_r_is_rejected() {
        assert!(DodParams::new(f64::NAN, 5).validate().is_err());
        assert!(Query::new(f64::NAN, 5).is_err());
        assert!(Query::new(f64::INFINITY, 5).is_err());
    }

    #[test]
    fn valid_queries_construct() {
        let q = Query::new(0.0, 0).expect("r = 0, k = 0 is a legal query");
        assert_eq!(q.threads(), None);
        assert_eq!(q.with_threads(0).threads(), Some(1));
    }
}
