//! Exact distance-based outlier detection (DOD) algorithms.
//!
//! Implements the paper's proximity-graph algorithm and all four baselines
//! of its evaluation, each returning exactly the same outlier set:
//!
//! | Algorithm | Paper ref | Entry point |
//! |---|---|---|
//! | Proximity-graph filter/verify (Algorithm 1) | §4 | [`GraphDod`] |
//! | Nested loop (randomized, early termination) | \[8, 21\] | [`nested_loop::detect`] |
//! | SNIF (r/2-clustering, group pruning) | \[30\] | [`snif::detect`] |
//! | DOLPHIN (two-scan candidate index) | \[4\] | [`dolphin::detect`] |
//! | VP-tree range counting | \[35\] | [`vptree_dod::VpTreeDod`] |
//!
//! All detectors take the same [`DodParams`] and are exact: an object is
//! reported iff it has fewer than `k` neighbors within distance `r`
//! (Definition 2). The integration tests pin every algorithm to the
//! nested-loop ground truth.

pub mod detector;
pub mod dolphin;
pub mod graph_dod;
pub mod greedy;
pub mod nested_loop;
pub mod parallel;
pub mod params;
pub mod snif;
pub mod verify;
pub mod vptree_dod;

pub use detector::Detector;
pub use graph_dod::{GraphDod, GraphDodReport};
pub use greedy::{greedy_collect, greedy_count, TraversalBuffer};
pub use params::{DodParams, DodResult};
pub use verify::VerifyStrategy;
pub use vptree_dod::VpTreeDod;
