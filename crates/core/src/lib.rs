//! Exact distance-based outlier detection (DOD) algorithms.
//!
//! The primary API is [`Engine`]: an owned, `Send + Sync`, fallible
//! detection session — build an index once ([`IndexSpec`]), answer any
//! number of validated [`Query`]s, persist/restore with
//! [`Engine::save`]/[`Engine::load`], and read every answer through the
//! unified [`OutlierReport`]. See the [`engine`] module docs for the
//! build-once/query-many example.
//!
//! Under the hood the crate implements the paper's proximity-graph
//! algorithm and all four baselines of its evaluation, each returning
//! exactly the same outlier set:
//!
//! | Algorithm | Paper ref | Served by |
//! |---|---|---|
//! | Proximity-graph filter/verify (Algorithm 1) | §4 | [`IndexSpec::Mrpg`] / [`IndexSpec::Nsw`] / [`IndexSpec::KGraph`] |
//! | VP-tree range counting | \[35\] | [`IndexSpec::VpTree`] |
//! | Nested loop (randomized, early termination) | \[8, 21\] | [`IndexSpec::None`], [`nested_loop::detect`] |
//! | SNIF (r/2-clustering, group pruning) | \[30\] | [`snif::detect`] |
//! | DOLPHIN (two-scan candidate index) | \[4\] | [`dolphin::detect`] |
//!
//! An object is reported iff it has fewer than `k` neighbors within
//! distance `r` (Definition 2). The integration tests pin every algorithm
//! to the nested-loop ground truth. Errors — invalid radii, size
//! mismatches, corrupt persisted indexes — surface as [`DodError`].

pub mod dolphin;
pub mod engine;
pub mod error;
pub mod graph_dod;
pub mod greedy;
pub mod nested_loop;
pub mod parallel;
pub mod params;
pub mod profile;
pub mod snif;
pub mod telemetry;
pub mod trace;
pub mod verify;
pub mod vptree_dod;

pub use engine::{Engine, EngineBuilder, IndexSpec};
pub use error::DodError;
pub use greedy::{greedy_collect, greedy_count, TraversalBuffer};
pub use params::{CostReport, DodParams, OutlierReport, Query};
pub use telemetry::EngineMetrics;
pub use verify::VerifyStrategy;
