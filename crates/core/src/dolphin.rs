//! DOLPHIN \[Angiulli & Fassetti, TKDD'09\] adapted to main memory, as
//! described in the paper's §3.
//!
//! Two scans over the data. The first maintains an index of *candidate*
//! objects: each incoming object probes the index, incrementing mutual
//! neighbor counts; an object that accumulates `k` neighbors during its
//! probe is proved an inlier on the spot and — with a small retention
//! probability — may stay in the index anyway purely to help prune later
//! objects. The second scan verifies the surviving candidates exactly
//! (early-terminated linear count), so the algorithm is exact.
//!
//! The index probe is a linear scan of the candidate list: with few true
//! outliers the list stays short and the first scan is cheap, but the
//! verification scan still costs `O(candidates · n)` — the `O(n²)`-class
//! behavior the paper's Table 5 reports.

use crate::parallel::par_map_strided;
use crate::params::{assert_valid, DodParams, OutlierReport};
use dod_metrics::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Probability of keeping a proved inlier in the index as a pruning helper
/// (DOLPHIN's `pinliers` parameter; the original paper recommends small
/// values).
const KEEP_PROB: f64 = 0.05;

/// Runs DOLPHIN. Exact for any metric.
pub fn detect<D: Dataset + ?Sized>(data: &D, params: &DodParams, seed: u64) -> OutlierReport {
    detect_with_stats(data, params, seed).0
}

/// Like [`detect`], additionally reporting the peak candidate-index bytes
/// (the paper's Table 6 "index size" for DOLPHIN).
pub fn detect_with_stats<D: Dataset + ?Sized>(
    data: &D,
    params: &DodParams,
    seed: u64,
) -> (OutlierReport, usize) {
    assert_valid(params);
    let n = data.len();
    let (r, k) = (params.r, params.k);
    let t = Instant::now();
    if n == 0 || k == 0 {
        return (
            OutlierReport::from_outliers(Vec::new(), t.elapsed().as_secs_f64()),
            0,
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);

    struct Entry {
        id: u32,
        /// Neighbors seen so far (among scanned objects).
        count: usize,
        /// Proved inlier, kept only to prune others.
        helper: bool,
    }

    // ---- First scan: build the candidate index ---------------------------
    let mut index: Vec<Entry> = Vec::new();
    let mut peak_index = 0usize;
    for p in 0..n {
        let mut found = 0usize;
        let mut i = 0;
        while i < index.len() {
            let e = &mut index[i];
            if data.dist(p, e.id as usize) <= r {
                found += 1;
                if !e.helper {
                    e.count += 1;
                    if e.count >= k {
                        // Proved inlier: drop it, or keep as helper rarely.
                        if rng.gen_bool(KEEP_PROB) {
                            e.helper = true;
                        } else {
                            index.swap_remove(i);
                            continue; // re-examine the swapped-in entry
                        }
                    }
                }
                if found >= k {
                    break;
                }
            }
            i += 1;
        }
        if found >= k {
            // p proved inlier during its probe; occasionally keep it to
            // prune later objects.
            if rng.gen_bool(KEEP_PROB) {
                index.push(Entry {
                    id: p as u32,
                    count: found,
                    helper: true,
                });
            }
        } else {
            index.push(Entry {
                id: p as u32,
                count: found,
                helper: false,
            });
        }
        peak_index = peak_index.max(index.len());
    }

    // ---- Second scan: verify surviving candidates exactly ----------------
    let candidates: Vec<u32> = index
        .into_iter()
        .filter(|e| !e.helper && e.count < k)
        .map(|e| e.id)
        .collect();
    let verdicts: Vec<bool> = par_map_strided(candidates.len(), params.threads, |ci| {
        let p = candidates[ci] as usize;
        let mut count = 0usize;
        for j in 0..n {
            if j != p && data.dist(p, j) <= r {
                count += 1;
                if count >= k {
                    return false;
                }
            }
        }
        true
    });
    let outliers: Vec<u32> = candidates
        .into_iter()
        .zip(verdicts)
        .filter(|&(_, v)| v)
        .map(|(id, _)| id)
        .collect();
    (
        OutlierReport::from_outliers(outliers, t.elapsed().as_secs_f64()),
        peak_index * std::mem::size_of::<Entry>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested_loop;
    use dod_metrics::{VectorSet, L2};

    fn random_blobs(n: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                if i % 40 == 39 {
                    vec![rng.gen_range(60.0f32..99.0), rng.gen_range(60.0f32..99.0)]
                } else {
                    let c = (i % 3) as f32 * 7.0;
                    vec![c + rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)]
                }
            })
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn matches_nested_loop() {
        let data = random_blobs(400, 1);
        for (r, k) in [(1.5, 4), (2.5, 8), (0.8, 2)] {
            let p = DodParams::new(r, k);
            assert_eq!(
                detect(&data, &p, 5).outliers,
                nested_loop::detect(&data, &p, 0).outliers,
                "r={r} k={k}"
            );
        }
    }

    #[test]
    fn independent_of_retention_seed() {
        let data = random_blobs(300, 2);
        let p = DodParams::new(1.5, 5);
        assert_eq!(
            detect(&data, &p, 0).outliers,
            detect(&data, &p, 77).outliers
        );
    }

    #[test]
    fn all_duplicates_no_outliers() {
        let data = VectorSet::from_rows(&vec![vec![3.0f32]; 50], L2);
        let res = detect(&data, &DodParams::new(0.0, 10), 0);
        assert!(res.outliers.is_empty());
    }

    #[test]
    fn everything_isolated_all_outliers() {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![(i * i) as f32 * 100.0]).collect();
        let data = VectorSet::from_rows(&rows, L2);
        let res = detect(&data, &DodParams::new(1.0, 1), 0);
        assert_eq!(res.outliers.len(), 20);
    }

    #[test]
    fn parallel_verification_matches() {
        let data = random_blobs(300, 4);
        let p = DodParams::new(1.5, 5);
        assert_eq!(
            detect(&data, &p, 3).outliers,
            detect(&data, &p.with_threads(4), 3).outliers
        );
    }
}
