//! The verification phase's `Exact-Counting` strategy (paper §4).
//!
//! Candidates that survive filtering are counted exactly, early-terminating
//! at `k`. The paper picks the engine by intrinsic dimensionality: a
//! VP-tree range count for low-dimensional data, a linear scan otherwise
//! (tree pruning dies of the curse of dimensionality). [`VerifyStrategy::Auto`]
//! makes that call with the TwoNN intrinsic-dimension estimator
//! \[Facco et al., 2017\]: `d ≈ ln 2 / mean(ln(r2/r1))` over a sample,
//! where `r1, r2` are 1st/2nd NN distances.

use dod_metrics::Dataset;
use dod_vptree::VpTree;

/// How `Exact-Counting` answers range-count queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VerifyStrategy {
    /// Estimate intrinsic dimensionality, then pick like the paper (its
    /// footnote calls "less than 5" low; we cut at
    /// [`VerifyStrategy::DEFAULT_CUTOFF`]).
    Auto,
    /// Always linear scan.
    Linear,
    /// Always VP-tree range counting (tree built once per detection call).
    VpTree,
}

impl VerifyStrategy {
    /// The intrinsic-dimensionality cutoff used by [`VerifyStrategy::Auto`].
    pub const DEFAULT_CUTOFF: f64 = 6.0;

    /// Resolves `Auto` into `Linear` or `VpTree` for a concrete dataset.
    pub fn resolve<D: Dataset + ?Sized>(self, data: &D, seed: u64) -> VerifyStrategy {
        match self {
            VerifyStrategy::Auto => {
                let d = intrinsic_dimension(data, 128, seed);
                if d <= Self::DEFAULT_CUTOFF {
                    VerifyStrategy::VpTree
                } else {
                    VerifyStrategy::Linear
                }
            }
            other => other,
        }
    }
}

/// TwoNN estimate of the intrinsic dimensionality from `sample` objects
/// (each costs one linear scan). Returns `f64::INFINITY` for degenerate
/// inputs (fewer than 3 objects, or all-coincident samples).
pub fn intrinsic_dimension<D: Dataset + ?Sized>(data: &D, sample: usize, seed: u64) -> f64 {
    let n = data.len();
    if n < 3 {
        return f64::INFINITY;
    }
    // Deterministic sample: stride through the ids with a seed offset.
    let take = sample.clamp(1, n);
    let stride = (n / take).max(1);
    let offset = (seed as usize) % stride.max(1);
    let mut log_ratios = Vec::with_capacity(take);
    let mut idx = offset;
    while idx < n && log_ratios.len() < take {
        let (mut r1, mut r2) = (f64::INFINITY, f64::INFINITY);
        for j in 0..n {
            if j == idx {
                continue;
            }
            let d = data.dist(idx, j);
            if d < r1 {
                r2 = r1;
                r1 = d;
            } else if d < r2 {
                r2 = d;
            }
        }
        if r1 > 0.0 && r2.is_finite() {
            log_ratios.push((r2 / r1).ln());
        }
        idx += stride;
    }
    if log_ratios.is_empty() {
        return f64::INFINITY;
    }
    let mean = log_ratios.iter().sum::<f64>() / log_ratios.len() as f64;
    if mean <= 0.0 {
        f64::INFINITY
    } else {
        std::f64::consts::LN_2 / mean
    }
}

/// A resolved exact-counting engine, reusable across candidates.
pub enum ExactCounter {
    /// Linear scan with early termination.
    Linear,
    /// VP-tree range counting with early termination.
    Tree(VpTree),
}

impl ExactCounter {
    /// Builds the engine a detection run will use.
    pub fn build<D: Dataset + ?Sized>(strategy: VerifyStrategy, data: &D, seed: u64) -> Self {
        match strategy.resolve(data, seed) {
            VerifyStrategy::Linear => ExactCounter::Linear,
            VerifyStrategy::VpTree => ExactCounter::Tree(VpTree::build(data, seed)),
            VerifyStrategy::Auto => unreachable!("resolve never returns Auto"),
        }
    }

    /// `min(true neighbor count of p, limit)`.
    pub fn count<D: Dataset + ?Sized>(&self, data: &D, p: usize, r: f64, limit: usize) -> usize {
        match self {
            ExactCounter::Linear => {
                let mut count = 0;
                for j in 0..data.len() {
                    if j != p && data.dist(p, j) <= r {
                        count += 1;
                        if count >= limit {
                            return count;
                        }
                    }
                }
                count
            }
            ExactCounter::Tree(tree) => tree.range_count(data, p, r, limit),
        }
    }

    /// Index bytes held by the engine (0 for linear scans).
    pub fn size_bytes(&self) -> usize {
        match self {
            ExactCounter::Linear => 0,
            ExactCounter::Tree(t) => t.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::{VectorSet, L2};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn manifold(n: usize, latent: usize, ambient: usize, seed: u64) -> VectorSet<L2> {
        // Random linear embedding of a `latent`-dim Gaussian into
        // `ambient` dims: intrinsic dimension = latent.
        let mut rng = StdRng::seed_from_u64(seed);
        let map: Vec<Vec<f32>> = (0..latent)
            .map(|_| (0..ambient).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                let z: Vec<f32> = (0..latent).map(|_| rng.gen_range(-1.0..1.0)).collect();
                (0..ambient)
                    .map(|d| (0..latent).map(|l| z[l] * map[l][d]).sum())
                    .collect()
            })
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn twonn_separates_low_from_high_dimension() {
        let low = intrinsic_dimension(&manifold(600, 2, 20, 1), 100, 0);
        let high = intrinsic_dimension(&manifold(600, 16, 20, 2), 100, 0);
        assert!(low < 5.0, "low-dim estimate {low}");
        assert!(high > 6.0, "high-dim estimate {high}");
        assert!(low < high);
    }

    #[test]
    fn auto_resolves_by_dimension() {
        let low = manifold(600, 2, 20, 1);
        let high = manifold(600, 16, 20, 2);
        assert_eq!(
            VerifyStrategy::Auto.resolve(&low, 0),
            VerifyStrategy::VpTree
        );
        assert_eq!(
            VerifyStrategy::Auto.resolve(&high, 0),
            VerifyStrategy::Linear
        );
    }

    #[test]
    fn fixed_strategies_resolve_to_themselves() {
        let data = manifold(50, 2, 4, 5);
        assert_eq!(
            VerifyStrategy::Linear.resolve(&data, 0),
            VerifyStrategy::Linear
        );
        assert_eq!(
            VerifyStrategy::VpTree.resolve(&data, 0),
            VerifyStrategy::VpTree
        );
    }

    #[test]
    fn both_engines_agree_with_brute_force() {
        let data = manifold(300, 3, 6, 6);
        let lin = ExactCounter::build(VerifyStrategy::Linear, &data, 0);
        let tree = ExactCounter::build(VerifyStrategy::VpTree, &data, 0);
        for p in (0..300).step_by(17) {
            for r in [0.2, 0.6, 1.5] {
                let truth = (0..300).filter(|&j| j != p && data.dist(p, j) <= r).count();
                assert_eq!(lin.count(&data, p, r, usize::MAX), truth);
                assert_eq!(tree.count(&data, p, r, usize::MAX), truth);
                // Early termination caps both.
                if truth >= 3 {
                    assert_eq!(lin.count(&data, p, r, 3), 3);
                    assert_eq!(tree.count(&data, p, r, 3), 3);
                }
            }
        }
    }

    #[test]
    fn degenerate_datasets_estimate_infinite_dimension() {
        let tiny = manifold(2, 1, 2, 7);
        assert_eq!(intrinsic_dimension(&tiny, 10, 0), f64::INFINITY);
        // All points coincide: r1 = 0 everywhere.
        let dup = VectorSet::from_rows(&vec![vec![1.0f32, 2.0]; 40], L2);
        assert_eq!(intrinsic_dimension(&dup, 10, 0), f64::INFINITY);
    }
}
