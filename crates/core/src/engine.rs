//! [`Engine`] — the owned, fallible, session-oriented front door.
//!
//! The paper's operational model is *build once offline, answer any
//! `(r, k)` query online* (§1). An [`Engine`] is that session as one
//! value: it owns the dataset and the index, is `Send + Sync` (put it
//! behind an `Arc` and a request handler), keeps per-engine reusable
//! traversal buffers and a cached verification engine so repeated queries
//! stop re-allocating, and returns [`DodError`] instead of panicking on
//! bad input. [`Engine::save`]/[`Engine::load`] persist the index and
//! parameters so a service restarts warm.
//!
//! ```
//! use dod_core::{Engine, IndexSpec, Query};
//! use dod_graph::MrpgParams;
//! use dod_metrics::{VectorSet, L2};
//!
//! // Three dense blobs plus an isolated point.
//! let mut rows: Vec<Vec<f32>> = (0..300)
//!     .map(|i| {
//!         let c = (i % 3) as f32 * 10.0;
//!         vec![c + (i as f32 * 0.618).fract() - 0.5, (i as f32 * 0.382).fract() - 0.5]
//!     })
//!     .collect();
//! rows.push(vec![500.0, 500.0]);
//! let data = VectorSet::from_rows(&rows, L2);
//!
//! // Offline: one engine, owning data + index.
//! let engine = Engine::builder(data)
//!     .index(IndexSpec::Mrpg(MrpgParams::new(8)))
//!     .build()?;
//!
//! // Online: any (r, k) query, as many times as you like.
//! let report = engine.query(Query::new(2.0, 5)?)?;
//! assert_eq!(report.outliers, vec![300]);
//! # Ok::<(), dod_core::DodError>(())
//! ```

use crate::error::DodError;
use crate::graph_dod::detect_on_graph;
use crate::greedy::BufferPool;
use crate::nested_loop;
use crate::params::{DodParams, OutlierReport, Query};
use crate::telemetry::EngineMetrics;
use crate::verify::{ExactCounter, VerifyStrategy};
use crate::vptree_dod::detect_on_tree;
use dod_graph::{mrpg, serialize, MrpgParams, ProximityGraph};
use dod_metrics::Dataset;
use dod_vptree::VpTree;
use std::io::{Read, Write};
use std::sync::OnceLock;
use std::time::Instant;

/// Which index an [`Engine`] builds offline and serves queries from.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum IndexSpec {
    /// The paper's MRPG (§5) — the strongest filter, plus the exact-`K'`
    /// verification shortcut when `params.full`.
    Mrpg(MrpgParams),
    /// A navigable small-world graph \[Malkov et al., 2014\].
    Nsw {
        /// Graph degree `K` (NSW is sized to match a KGraph of this
        /// degree, as in the paper's §6).
        degree: usize,
    },
    /// An approximate K-NN graph built by NNDescent \[Dong et al.,
    /// WWW'11\].
    KGraph {
        /// Graph degree `K`.
        degree: usize,
    },
    /// A VP-tree \[Yianilos, SODA'93\]: no filtering phase, one
    /// early-terminated range count per object.
    VpTree,
    /// No index: the randomized nested loop. The zero-preprocessing
    /// baseline, and the ground truth the parity tests pin everything to.
    None,
}

impl IndexSpec {
    /// Default graph degree [`FromStr`](std::str::FromStr) uses when the
    /// wire spelling carries no `:degree` suffix — `mrpg` parses as
    /// `mrpg:8` (the [`Engine::builder`] default), `nsw`/`kgraph` as
    /// degree 25 (the paper's §6 default for the comparison graphs).
    pub fn default_degree(kind: &str) -> usize {
        if kind == "mrpg" {
            8
        } else {
            25
        }
    }

    /// Checks the spec can produce a working index (non-zero graph
    /// degree). [`EngineBuilder::build`] runs this; callers that stage
    /// expensive work before the build (dataset generation, registry
    /// slots) can run it first and fail cheaply.
    pub fn validate(&self) -> Result<(), DodError> {
        let degree = match self {
            IndexSpec::Mrpg(p) => p.k,
            IndexSpec::Nsw { degree } | IndexSpec::KGraph { degree } => *degree,
            IndexSpec::VpTree | IndexSpec::None => return Ok(()),
        };
        if degree == 0 {
            return Err(DodError::InvalidSpec {
                reason: "graph degree must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// The canonical wire spelling: `mrpg:8`, `nsw:25`, `kgraph:25`,
/// `vptree`, `none`. This is the one spelling shared by engine-creation
/// request bodies and the `GET /v1/engines` listing in `dod_server`, and
/// it round-trips through [`FromStr`](std::str::FromStr): for every spec
/// `s` produced by parsing, `s.to_string().parse()` yields `s` again.
///
/// Only the variant and the graph degree are wire-expressible; the
/// remaining [`MrpgParams`] tuning fields keep their
/// [`MrpgParams::new`] defaults, which is what `Display` of a
/// hand-tuned spec reports too.
impl std::fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexSpec::Mrpg(p) => write!(f, "mrpg:{}", p.k),
            IndexSpec::Nsw { degree } => write!(f, "nsw:{degree}"),
            IndexSpec::KGraph { degree } => write!(f, "kgraph:{degree}"),
            IndexSpec::VpTree => f.write_str("vptree"),
            IndexSpec::None => f.write_str("none"),
        }
    }
}

/// Parses the canonical wire spelling (see the [`Display`](std::fmt::Display) impl):
/// `mrpg`, `nsw` and `kgraph` take an optional `:degree` suffix
/// ([`IndexSpec::default_degree`] when absent), `vptree` and `none` take
/// none. Anything else — unknown kinds, a degree on an index that has
/// none, a zero or non-numeric degree — is [`DodError::InvalidSpec`].
impl std::str::FromStr for IndexSpec {
    type Err = DodError;

    fn from_str(s: &str) -> Result<Self, DodError> {
        let s = s.trim();
        let (kind, degree) = match s.split_once(':') {
            None => (s, None),
            Some((kind, d)) => {
                let degree = d.parse::<usize>().ok().filter(|&d| d > 0).ok_or_else(|| {
                    DodError::InvalidSpec {
                        reason: format!("index degree must be a positive integer, got {d:?}"),
                    }
                })?;
                (kind, Some(degree))
            }
        };
        let spec = match kind {
            "mrpg" => IndexSpec::Mrpg(MrpgParams::new(
                degree.unwrap_or_else(|| IndexSpec::default_degree("mrpg")),
            )),
            "nsw" => IndexSpec::Nsw {
                degree: degree.unwrap_or_else(|| IndexSpec::default_degree("nsw")),
            },
            "kgraph" => IndexSpec::KGraph {
                degree: degree.unwrap_or_else(|| IndexSpec::default_degree("kgraph")),
            },
            "vptree" | "none" => {
                if degree.is_some() {
                    return Err(DodError::InvalidSpec {
                        reason: format!("index {kind:?} takes no degree"),
                    });
                }
                if kind == "vptree" {
                    IndexSpec::VpTree
                } else {
                    IndexSpec::None
                }
            }
            other => {
                return Err(DodError::InvalidSpec {
                    reason: format!(
                        "unknown index {other:?} (expected mrpg, nsw, kgraph, vptree or none)"
                    ),
                })
            }
        };
        Ok(spec)
    }
}

/// The built index an engine serves from.
enum Index {
    Graph(ProximityGraph),
    Tree(VpTree),
    None,
}

/// Configures and builds an [`Engine`]. Created by [`Engine::builder`].
pub struct EngineBuilder<D> {
    data: D,
    spec: IndexSpec,
    prebuilt: Option<ProximityGraph>,
    threads: usize,
    verify: VerifyStrategy,
    seed: u64,
}

impl<D: Dataset> EngineBuilder<D> {
    /// Selects the index to build (default: full MRPG of degree 8).
    pub fn index(mut self, spec: IndexSpec) -> Self {
        self.spec = spec;
        self.prebuilt = None;
        self
    }

    /// Serves from an already-built proximity graph instead of building
    /// one — the bench-harness path, where graphs are constructed
    /// separately to time each build phase.
    pub fn prebuilt_graph(mut self, graph: ProximityGraph) -> Self {
        self.prebuilt = Some(graph);
        self
    }

    /// Default worker threads per query (overridable per query with
    /// [`Query::with_threads`]; clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Verification strategy for filter survivors (default
    /// [`VerifyStrategy::Auto`]).
    pub fn verify(mut self, verify: VerifyStrategy) -> Self {
        self.verify = verify;
        self
    }

    /// Seed for index construction and the verification engine's
    /// internals. Detection results never depend on it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the index and returns the ready engine.
    ///
    /// Fails with [`DodError::InvalidSpec`] on an unusable spec and
    /// [`DodError::SizeMismatch`] when a prebuilt graph does not cover the
    /// dataset.
    pub fn build(self) -> Result<Engine<D>, DodError> {
        let t = Instant::now();
        let index = match self.prebuilt {
            Some(graph) => {
                if graph.node_count() != self.data.len() {
                    return Err(DodError::SizeMismatch {
                        index: graph.node_count(),
                        data: self.data.len(),
                    });
                }
                Index::Graph(graph)
            }
            None => {
                self.spec.validate()?;
                match &self.spec {
                    IndexSpec::Mrpg(p) => Index::Graph(mrpg::build(&self.data, p).0),
                    IndexSpec::Nsw { degree } => {
                        Index::Graph(mrpg::build_nsw(&self.data, *degree, self.seed))
                    }
                    IndexSpec::KGraph { degree } => Index::Graph(mrpg::build_kgraph(
                        &self.data,
                        *degree,
                        self.threads,
                        self.seed,
                    )),
                    IndexSpec::VpTree => Index::Tree(VpTree::build(&self.data, self.seed)),
                    IndexSpec::None => Index::None,
                }
            }
        };
        Ok(Engine {
            data: self.data,
            index,
            verify: self.verify,
            threads: self.threads,
            seed: self.seed,
            build_secs: t.elapsed().as_secs_f64(),
            pool: BufferPool::new(),
            counter: OnceLock::new(),
            metrics: EngineMetrics::new(),
        })
    }
}

/// An owned, thread-safe detection session: dataset + index + query
/// defaults, serving any number of [`Query`]s.
///
/// See the [module docs](self) for the build-once/query-many example and
/// the crate root for serving from `Arc<Engine>`.
pub struct Engine<D> {
    data: D,
    index: Index,
    verify: VerifyStrategy,
    threads: usize,
    seed: u64,
    build_secs: f64,
    /// Reusable traversal buffers (one per concurrent worker).
    pool: BufferPool,
    /// The verification engine, built lazily on the first query that
    /// leaves candidates and reused by every later query.
    counter: OnceLock<ExactCounter>,
    /// Query counters and latency histogram (lock-free; scraped live by
    /// serving layers through [`Engine::metrics`]).
    metrics: EngineMetrics,
}

impl<D: Dataset> Engine<D> {
    /// Starts configuring an engine over an owned (or borrowed — `&D` is
    /// itself a [`Dataset`]) dataset.
    pub fn builder(data: D) -> EngineBuilder<D> {
        EngineBuilder {
            data,
            spec: IndexSpec::Mrpg(MrpgParams::new(8)),
            prebuilt: None,
            threads: 1,
            verify: VerifyStrategy::Auto,
            seed: 0,
        }
    }

    /// Answers one `(r, k)` query. Exact for every index spec: the parity
    /// suite pins all of them to the nested-loop ground truth.
    ///
    /// Never panics on caller input — a [`Query`] is validated at
    /// construction and the engine's index always matches its dataset.
    pub fn query(&self, query: Query) -> Result<OutlierReport, DodError> {
        let t = Instant::now();
        let result = self.query_uninstrumented(query);
        match &result {
            Ok(report) => {
                self.metrics.queries.inc();
                self.metrics
                    .outliers_reported
                    .add(report.outliers.len() as u64);
                self.metrics.latency.observe_secs(t.elapsed().as_secs_f64());
                self.metrics.record_report(report);
            }
            Err(_) => self.metrics.query_errors.inc(),
        }
        result
    }

    /// Answers a batch of queries, one [`OutlierReport`] per query in
    /// input order.
    ///
    /// The batch amortizes everything per-engine the single-query path
    /// already pools — the traversal buffers and, decisively, the lazily
    /// built verification engine (a VP-tree over the whole dataset, paid
    /// once for the batch instead of per cold engine) — and answers
    /// *identical* queries once, cloning the report into every duplicate
    /// slot. Batches from a serving layer are exactly where duplicates
    /// concentrate (many clients asking the default `(r, k)`), so the
    /// duplicate scan is quadratic in the batch length but trivially so.
    ///
    /// Fails on the first failing query; no partial batches (all queries
    /// are validated [`Query`]s, so in practice this means an I/O-less
    /// `Ok`).
    pub fn query_many(&self, queries: &[Query]) -> Result<Vec<OutlierReport>, DodError> {
        self.metrics.batches.inc();
        let mut answers: Vec<Option<OutlierReport>> = vec![None; queries.len()];
        for i in 0..queries.len() {
            if answers[i].is_some() {
                continue;
            }
            let report = self.query(queries[i])?;
            for j in (i + 1)..queries.len() {
                if answers[j].is_none() && queries[j] == queries[i] {
                    // Count the duplicate as an answered query — it is one,
                    // served at clone cost. Its `cost` counters are NOT
                    // re-recorded: the clone evaluated zero distances.
                    self.metrics.queries.inc();
                    self.metrics
                        .outliers_reported
                        .add(report.outliers.len() as u64);
                    answers[j] = Some(report.clone());
                }
            }
            answers[i] = Some(report);
        }
        Ok(answers.into_iter().map(|a| a.expect("filled")).collect())
    }

    /// Live query telemetry: counters and the latency histogram. Scraped
    /// by serving layers (`dod_server`'s `/metrics`); recording costs a
    /// few relaxed atomics per query.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    fn query_uninstrumented(&self, query: Query) -> Result<OutlierReport, DodError> {
        let threads = query.threads().unwrap_or(self.threads).max(1);
        let (r, k) = (query.r(), query.k());
        match &self.index {
            Index::Graph(g) => detect_on_graph(
                g,
                &self.data,
                r,
                k,
                threads,
                self.verify,
                self.seed,
                &self.pool,
                &self.counter,
            ),
            Index::Tree(t) => Ok(detect_on_tree(t, &self.data, r, k, threads)),
            Index::None => Ok(nested_loop::detect(
                &self.data,
                &DodParams::new(r, k).with_threads(threads),
                self.seed,
            )),
        }
    }

    /// The dataset the engine serves.
    pub fn data(&self) -> &D {
        &self.data
    }

    /// Number of objects served.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the engine serves an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The proximity graph the engine serves from, if it is graph-backed.
    pub fn graph(&self) -> Option<&ProximityGraph> {
        match &self.index {
            Index::Graph(g) => Some(g),
            _ => None,
        }
    }

    /// Display name of the backing index, matching the paper's tables.
    pub fn index_name(&self) -> &'static str {
        match &self.index {
            Index::Graph(g) => g.kind.name(),
            Index::Tree(_) => "VP-tree",
            Index::None => "Nested-loop",
        }
    }

    /// Index footprint in bytes (paper Table 6; 0 for
    /// [`IndexSpec::None`]).
    pub fn index_bytes(&self) -> usize {
        match &self.index {
            Index::Graph(g) => g.size_bytes(),
            Index::Tree(t) => t.size_bytes(),
            Index::None => 0,
        }
    }

    /// Wall-clock seconds [`EngineBuilder::build`] (or [`Engine::load`])
    /// spent standing the engine up.
    pub fn build_secs(&self) -> f64 {
        self.build_secs
    }

    /// The configured verification strategy.
    pub fn verify(&self) -> VerifyStrategy {
        self.verify
    }

    /// The default per-query thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Persists the index and query defaults (not the dataset) to `w`.
    ///
    /// Graph indexes are stored via the binary graph codec
    /// ([`dod_graph::serialize`]); a VP-tree engine stores only its seed
    /// and deterministically rebuilds the tree on [`Engine::load`].
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), DodError> {
        let (tag, payload): (u8, Option<&ProximityGraph>) = match &self.index {
            Index::None => (TAG_NONE, None),
            Index::Tree(_) => (TAG_VPTREE, None),
            Index::Graph(g) => (TAG_GRAPH, Some(g)),
        };
        let mut head = Vec::with_capacity(HEADER_LEN);
        head.extend_from_slice(ENGINE_MAGIC);
        head.push(ENGINE_VERSION);
        head.push(tag);
        head.push(verify_to_u8(self.verify));
        head.extend_from_slice(&(self.threads as u32).to_le_bytes());
        head.extend_from_slice(&self.seed.to_le_bytes());
        // Dataset fingerprint (FNV-1a over the point bytes for the
        // concrete object stores): `load` refuses to marry this index to
        // any other dataset, before even comparing cardinalities.
        head.extend_from_slice(&self.data.content_digest().to_le_bytes());
        head.extend_from_slice(&(self.data.len() as u64).to_le_bytes());
        w.write_all(&head)?;
        if let Some(g) = payload {
            let bytes = serialize::to_bytes(g);
            w.write_all(&(bytes.len() as u64).to_le_bytes())?;
            w.write_all(&bytes)?;
        }
        Ok(())
    }

    /// Restores an engine persisted by [`Engine::save`] over the same
    /// dataset.
    ///
    /// Fails with [`DodError::Corrupt`] (with the byte offset) on a
    /// damaged payload **or** when `data`'s
    /// [`content_digest`](Dataset::content_digest) differs from the one
    /// the engine was saved with — the checksum is compared before the
    /// cardinality, so the wrong dataset file is rejected even when its
    /// size happens to match. A right-digest/wrong-cardinality payload
    /// (hand-edited) still surfaces as [`DodError::SizeMismatch`].
    pub fn load<R: Read>(data: D, mut r: R) -> Result<Self, DodError> {
        let t = Instant::now();
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        let corrupt = |offset: usize, reason: &'static str| DodError::Corrupt { offset, reason };
        if buf.len() < HEADER_LEN {
            return Err(corrupt(buf.len(), "truncated engine header"));
        }
        if &buf[..4] != ENGINE_MAGIC {
            return Err(corrupt(0, "bad engine magic"));
        }
        if buf[4] != ENGINE_VERSION {
            return Err(corrupt(4, "unsupported engine version"));
        }
        let tag = buf[5];
        let verify = verify_from_u8(buf[6]).ok_or(corrupt(6, "bad verify strategy"))?;
        let threads = u32::from_le_bytes(buf[7..11].try_into().expect("4 bytes")) as usize;
        let seed = u64::from_le_bytes(buf[11..19].try_into().expect("8 bytes"));
        let digest = u64::from_le_bytes(buf[19..27].try_into().expect("8 bytes"));
        // Checked before the size comparison: a wrong dataset of the right
        // cardinality would pass a size check and silently serve garbage.
        if digest != data.content_digest() {
            return Err(corrupt(
                19,
                "dataset checksum mismatch: engine was saved over different points",
            ));
        }
        let n = u64::from_le_bytes(buf[27..35].try_into().expect("8 bytes")) as usize;
        if n != data.len() {
            return Err(DodError::SizeMismatch {
                index: n,
                data: data.len(),
            });
        }
        let index = match tag {
            TAG_NONE => Index::None,
            TAG_VPTREE => Index::Tree(VpTree::build(&data, seed)),
            TAG_GRAPH => {
                if buf.len() < HEADER_LEN + 8 {
                    return Err(corrupt(buf.len(), "truncated graph payload length"));
                }
                let len = u64::from_le_bytes(buf[35..43].try_into().expect("8 bytes")) as usize;
                let start = HEADER_LEN + 8;
                // `len` is attacker-controlled: compare against the bytes
                // actually present (start <= buf.len() was checked above)
                // rather than computing `start + len`, which can overflow.
                if buf.len() - start < len {
                    return Err(corrupt(buf.len(), "truncated graph payload"));
                }
                let g = serialize::from_bytes(&buf[start..start + len]).map_err(|e| {
                    // Re-anchor the codec's offset to the engine payload.
                    match DodError::from(e) {
                        DodError::Corrupt { offset, reason } => DodError::Corrupt {
                            offset: start + offset,
                            reason,
                        },
                        other => other,
                    }
                })?;
                if g.node_count() != n {
                    return Err(DodError::SizeMismatch {
                        index: g.node_count(),
                        data: n,
                    });
                }
                Index::Graph(g)
            }
            _ => return Err(corrupt(5, "bad index tag")),
        };
        Ok(Engine {
            data,
            index,
            verify,
            threads: threads.max(1),
            seed,
            build_secs: t.elapsed().as_secs_f64(),
            pool: BufferPool::new(),
            counter: OnceLock::new(),
            metrics: EngineMetrics::new(),
        })
    }

    /// Consumes the engine, returning its dataset.
    pub fn into_data(self) -> D {
        self.data
    }
}

const ENGINE_MAGIC: &[u8; 4] = b"DODE";
/// Version 2 added the dataset digest (version-1 payloads are refused —
/// they carry no checksum, which is the guarantee this format exists for).
const ENGINE_VERSION: u8 = 2;
/// magic + version + index tag + verify + threads u32 + seed u64 +
/// dataset digest u64 + n u64.
const HEADER_LEN: usize = 4 + 1 + 1 + 1 + 4 + 8 + 8 + 8;
const TAG_NONE: u8 = 0;
const TAG_VPTREE: u8 = 1;
const TAG_GRAPH: u8 = 2;

fn verify_to_u8(v: VerifyStrategy) -> u8 {
    match v {
        VerifyStrategy::Auto => 0,
        VerifyStrategy::Linear => 1,
        VerifyStrategy::VpTree => 2,
    }
}

fn verify_from_u8(v: u8) -> Option<VerifyStrategy> {
    Some(match v {
        0 => VerifyStrategy::Auto,
        1 => VerifyStrategy::Linear,
        2 => VerifyStrategy::VpTree,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::{VectorSet, L2};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                if i % 29 == 28 {
                    vec![rng.gen_range(60.0f32..90.0), rng.gen_range(60.0f32..90.0)]
                } else {
                    let c = (i % 3) as f32 * 8.0;
                    vec![c + rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)]
                }
            })
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    fn all_specs() -> Vec<IndexSpec> {
        vec![
            IndexSpec::Mrpg(MrpgParams::new(6)),
            IndexSpec::Nsw { degree: 6 },
            IndexSpec::KGraph { degree: 6 },
            IndexSpec::VpTree,
            IndexSpec::None,
        ]
    }

    #[test]
    fn index_spec_wire_spelling_round_trips() {
        // Canonical spellings are fixed points of parse → display.
        for s in ["mrpg:8", "nsw:25", "kgraph:12", "vptree", "none"] {
            let spec: IndexSpec = s.parse().expect(s);
            assert_eq!(spec.to_string(), s);
        }
        // Bare graph kinds pick up their documented default degree.
        assert_eq!(
            "mrpg".parse::<IndexSpec>().unwrap().to_string(),
            format!("mrpg:{}", IndexSpec::default_degree("mrpg"))
        );
        assert_eq!("nsw".parse::<IndexSpec>().unwrap().to_string(), "nsw:25");
        assert_eq!(
            "kgraph".parse::<IndexSpec>().unwrap().to_string(),
            "kgraph:25"
        );
        // Whitespace is tolerated; structure is preserved.
        assert!(matches!(
            "  mrpg:6 ".parse::<IndexSpec>().unwrap(),
            IndexSpec::Mrpg(p) if p.k == 6 && p.k_prime == 24
        ));
        // Rejections are typed, not panics.
        for bad in [
            "hnsw", "mrpg:0", "mrpg:-1", "mrpg:x", "vptree:4", "none:1", "", "mrpg:",
        ] {
            assert!(
                matches!(bad.parse::<IndexSpec>(), Err(DodError::InvalidSpec { .. })),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn every_spec_matches_the_ground_truth() {
        let data = blobs(400, 1);
        let q = Query::new(2.0, 5).unwrap();
        let truth = nested_loop::detect(&data, &DodParams::new(2.0, 5), 0).outliers;
        assert!(!truth.is_empty());
        for spec in all_specs() {
            let name = format!("{spec:?}");
            let engine = Engine::builder(&data).index(spec).build().expect("build");
            assert_eq!(engine.query(q).expect("query").outliers, truth, "{name}");
        }
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine<VectorSet<L2>>>();
        assert_send_sync::<Engine<&VectorSet<L2>>>();
    }

    #[test]
    fn concurrent_queries_through_an_arc() {
        let engine = std::sync::Arc::new(
            Engine::builder(blobs(300, 2))
                .index(IndexSpec::Mrpg(MrpgParams::new(6)))
                .build()
                .expect("build"),
        );
        let q = Query::new(2.0, 4).unwrap();
        let baseline = engine.query(q).expect("query").outliers;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let e = std::sync::Arc::clone(&engine);
                std::thread::spawn(move || e.query(q).expect("query").outliers)
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("join"), baseline);
        }
    }

    #[test]
    fn repeated_queries_reuse_buffers_and_counter() {
        let engine = Engine::builder(blobs(300, 3))
            .index(IndexSpec::Mrpg(MrpgParams::new(6)))
            .build()
            .expect("build");
        let a = engine.query(Query::new(2.0, 4).unwrap()).expect("query");
        assert!(
            engine.counter.get().is_some() || a.candidates == 0,
            "a query with candidates must cache the verification engine"
        );
        let b = engine.query(Query::new(2.0, 4).unwrap()).expect("query");
        assert_eq!(a.outliers, b.outliers);
        // The same engine answers a different query without rebuilding.
        let c = engine.query(Query::new(4.0, 4).unwrap()).expect("query");
        assert!(c.outliers.len() <= a.outliers.len());
    }

    #[test]
    fn query_many_matches_query_and_dedupes() {
        let engine = Engine::builder(blobs(300, 11))
            .index(IndexSpec::Mrpg(MrpgParams::new(6)))
            .build()
            .expect("build");
        let a = Query::new(2.0, 4).unwrap();
        let b = Query::new(4.0, 6).unwrap();
        let batch = engine.query_many(&[a, b, a, a]).expect("batch");
        assert_eq!(batch.len(), 4);
        let single_a = engine.query(a).expect("query");
        let single_b = engine.query(b).expect("query");
        assert_eq!(batch[0].outliers, single_a.outliers);
        assert_eq!(batch[1].outliers, single_b.outliers);
        // Duplicate slots are byte-for-byte the first answer (clones of
        // one report, including its timing fields).
        assert_eq!(batch[2], batch[0]);
        assert_eq!(batch[3], batch[0]);
        assert!(engine.query_many(&[]).expect("empty").is_empty());
    }

    #[test]
    fn metrics_count_queries_batches_and_latency() {
        let engine = Engine::builder(blobs(300, 12))
            .index(IndexSpec::Mrpg(MrpgParams::new(6)))
            .build()
            .expect("build");
        assert_eq!(engine.metrics().queries.get(), 0);
        let q = Query::new(2.0, 4).unwrap();
        let rep = engine.query(q).expect("query");
        let batch = engine.query_many(&[q, q]).expect("batch");
        let m = engine.metrics();
        assert_eq!(m.queries.get(), 3, "1 single + 2 batch members");
        assert_eq!(m.batches.get(), 1);
        assert_eq!(m.query_errors.get(), 0);
        assert_eq!(
            m.outliers_reported.get(),
            (rep.outliers.len() + 2 * batch[0].outliers.len()) as u64
        );
        let lat = m.latency.snapshot();
        // Duplicate batch members are served by clone, not re-timed.
        assert_eq!(lat.count, 2);
        assert!(lat.sum_secs > 0.0);
        // Cost counters accumulate the two *distinct* executions only —
        // the cloned duplicate evaluated zero distances.
        assert_eq!(
            m.filter_dist_evals.get() + m.verify_dist_evals.get(),
            2 * rep.cost.total_dist_evals(),
            "clone must not re-book cost"
        );
        assert_eq!(m.hops.get(), 2 * rep.cost.hops);
        assert_eq!(m.candidates.get(), 2 * rep.candidates as u64);
    }

    #[test]
    fn concurrent_query_many_cost_counters_sum_exactly() {
        // Satellite: the relaxed-atomic cost counters must be exact under
        // parallel batches (mirrors the telemetry "concurrent observations
        // sum exactly" unit, but through the real query path).
        let engine = Engine::builder(blobs(300, 13))
            .index(IndexSpec::Mrpg(MrpgParams::new(6)))
            .build()
            .expect("build");
        // Distinct (r, k) per slot so the dedup path cannot collapse work.
        let queries: Vec<Query> = (0..4)
            .map(|i| Query::new(1.5 + 0.1 * i as f64, 4 + i).unwrap())
            .collect();
        let baseline: Vec<OutlierReport> = queries
            .iter()
            .map(|&q| engine.query(q).expect("query"))
            .collect();
        let before = (
            engine.metrics().filter_dist_evals.get(),
            engine.metrics().verify_dist_evals.get(),
            engine.metrics().hops.get(),
        );
        const ROUNDS: usize = 8;
        std::thread::scope(|s| {
            for _ in 0..ROUNDS {
                let engine = &engine;
                let queries = &queries;
                s.spawn(move || {
                    engine.query_many(queries).expect("batch");
                });
            }
        });
        let expected: u64 = baseline.iter().map(|r| r.cost.filter_dist_evals).sum();
        let m = engine.metrics();
        assert_eq!(
            m.filter_dist_evals.get() - before.0,
            ROUNDS as u64 * expected,
            "filter evals must sum exactly across concurrent batches"
        );
        let expected_verify: u64 = baseline.iter().map(|r| r.cost.verify_dist_evals).sum();
        assert_eq!(
            m.verify_dist_evals.get() - before.1,
            ROUNDS as u64 * expected_verify
        );
        let expected_hops: u64 = baseline.iter().map(|r| r.cost.hops).sum();
        assert_eq!(m.hops.get() - before.2, ROUNDS as u64 * expected_hops);
    }

    #[test]
    fn per_query_thread_override() {
        let engine = Engine::builder(blobs(300, 4))
            .index(IndexSpec::Mrpg(MrpgParams::new(6)))
            .threads(1)
            .build()
            .expect("build");
        let q = Query::new(2.0, 4).unwrap();
        let seq = engine.query(q).expect("seq");
        let par = engine.query(q.with_threads(4)).expect("par");
        assert_eq!(seq.outliers, par.outliers);
        assert_eq!(seq.candidates, par.candidates);
    }

    #[test]
    fn prebuilt_graph_engines_serve_and_reject_mismatches() {
        let data = blobs(200, 5);
        let (g, _) = mrpg::build(&data, &MrpgParams::new(5));
        let engine = Engine::builder(&data)
            .prebuilt_graph(g)
            .build()
            .expect("build");
        assert_eq!(engine.index_name(), "MRPG");
        let truth = nested_loop::detect(&data, &DodParams::new(2.0, 4), 0).outliers;
        assert_eq!(
            engine.query(Query::new(2.0, 4).unwrap()).unwrap().outliers,
            truth
        );

        let small = blobs(50, 5);
        let (g2, _) = mrpg::build(&small, &MrpgParams::new(5));
        let err = Engine::builder(&data).prebuilt_graph(g2).build();
        assert!(matches!(err, Err(DodError::SizeMismatch { .. })));
    }

    #[test]
    fn zero_degree_specs_are_rejected() {
        let data = blobs(50, 6);
        for spec in [
            IndexSpec::Nsw { degree: 0 },
            IndexSpec::KGraph { degree: 0 },
            IndexSpec::Mrpg(MrpgParams::new(0)),
        ] {
            let err = Engine::builder(&data).index(spec).build();
            assert!(matches!(err, Err(DodError::InvalidSpec { .. })));
        }
    }

    #[test]
    fn save_load_round_trips_every_spec() {
        let data = blobs(250, 7);
        let q = Query::new(2.0, 4).unwrap();
        for spec in all_specs() {
            let name = format!("{spec:?}");
            let engine = Engine::builder(&data)
                .index(spec)
                .verify(VerifyStrategy::Linear)
                .threads(2)
                .seed(9)
                .build()
                .expect("build");
            let want = engine.query(q).expect("query");
            let mut bytes = Vec::new();
            engine.save(&mut bytes).expect("save");
            let loaded = Engine::load(&data, &bytes[..]).expect("load");
            assert_eq!(loaded.index_name(), engine.index_name(), "{name}");
            assert_eq!(loaded.threads(), 2);
            assert_eq!(loaded.seed(), 9);
            assert_eq!(loaded.verify(), VerifyStrategy::Linear);
            let got = loaded.query(q).expect("query");
            assert_eq!(got.outliers, want.outliers, "{name}");
            assert_eq!(got.candidates, want.candidates, "{name}");
            assert_eq!(got.decided_in_filter, want.decided_in_filter, "{name}");
        }
    }

    #[test]
    fn load_rejects_wrong_dataset_and_corruption() {
        let data = blobs(120, 8);
        let engine = Engine::builder(&data)
            .index(IndexSpec::Mrpg(MrpgParams::new(5)))
            .build()
            .expect("build");
        let mut bytes = Vec::new();
        engine.save(&mut bytes).expect("save");

        // Wrong dataset: the checksum rejects it before any size check —
        // both at a different cardinality and at the *same* cardinality
        // with different points, where a size check alone would pass.
        let other = blobs(60, 8);
        assert!(matches!(
            Engine::load(&other, &bytes[..]),
            Err(DodError::Corrupt { offset: 19, .. })
        ));
        let same_n = blobs(120, 99);
        assert!(matches!(
            Engine::load(&same_n, &bytes[..]),
            Err(DodError::Corrupt { offset: 19, .. })
        ));

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Engine::load(&data, &bad[..]),
            Err(DodError::Corrupt { offset: 0, .. })
        ));

        // Truncation anywhere must error with an in-bounds offset.
        for cut in [0, 10, HEADER_LEN, HEADER_LEN + 8, bytes.len() - 1] {
            match Engine::load(&data, &bytes[..cut]) {
                Err(DodError::Corrupt { offset, .. }) => assert!(offset <= cut),
                Err(e) => panic!("cut {cut}: unexpected error {e}"),
                Ok(_) => panic!("cut {cut} accepted"),
            }
        }

        // A corrupted graph-payload length (huge u64) must be a typed
        // error, never an overflow panic.
        let mut bad = bytes.clone();
        bad[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Engine::load(&data, &bad[..]),
            Err(DodError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_dataset_and_degenerate_queries_never_panic() {
        let empty = VectorSet::from_rows(&[], L2);
        let engine = Engine::builder(empty)
            .index(IndexSpec::VpTree)
            .build()
            .expect("build");
        assert!(engine.is_empty());
        let report = engine.query(Query::new(1.0, 3).unwrap()).expect("query");
        assert!(report.outliers.is_empty());

        let data = blobs(40, 9);
        for spec in all_specs() {
            let engine = Engine::builder(&data).index(spec).build().expect("build");
            for (r, k) in [(0.0, 1), (1e18, 40), (1.0, 0)] {
                let report = engine.query(Query::new(r, k).unwrap()).expect("query");
                assert!(report.outliers.len() <= 40);
            }
        }
    }

    #[test]
    fn accessors_expose_the_session_state() {
        let data = blobs(100, 10);
        let engine = Engine::builder(data)
            .index(IndexSpec::KGraph { degree: 5 })
            .threads(3)
            .seed(4)
            .build()
            .expect("build");
        assert_eq!(engine.len(), 100);
        assert_eq!(engine.index_name(), "KGraph");
        assert!(engine.index_bytes() > 0);
        assert!(engine.build_secs() >= 0.0);
        assert!(engine.graph().is_some());
        assert_eq!(engine.threads(), 3);
        assert_eq!(engine.seed(), 4);
        assert_eq!(engine.verify(), VerifyStrategy::Auto);
        let data = engine.into_data();
        assert_eq!(data.len(), 100);
    }
}
