//! SNIF \[Tao, Xiao & Zhou, KDD'06\] adapted to main memory, as described
//! in the paper's §3.
//!
//! Objects are grouped into clusters of radius `r/2` around randomly
//! arising centers; the triangle inequality then gives three prunes:
//!
//! 1. any two members of one cluster are within `r` of each other, so a
//!    cluster with more than `k` objects proves all its members inliers;
//! 2. a whole cluster is within `r` of `p` when
//!    `dist(p, center) + r/2 <= r` — count it wholesale;
//! 3. a whole cluster is beyond `r` when `dist(p, center) - r/2 > r` —
//!    skip it wholesale.
//!
//! Remaining objects get exact counts with early termination, so the
//! result is exact. The cluster structure loses its bite in high
//! dimensions (everything is "far"), which is exactly the weakness the
//! paper's Table 5 exposes.

use crate::parallel::par_map_strided;
use crate::params::{assert_valid, DodParams, OutlierReport};
use dod_metrics::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Runs SNIF. Exact for any metric.
pub fn detect<D: Dataset + ?Sized>(data: &D, params: &DodParams, seed: u64) -> OutlierReport {
    detect_with_stats(data, params, seed).0
}

/// Like [`detect`], additionally reporting the bytes of the cluster
/// structure (the paper's Table 6 "index size" for SNIF).
pub fn detect_with_stats<D: Dataset + ?Sized>(
    data: &D,
    params: &DodParams,
    seed: u64,
) -> (OutlierReport, usize) {
    assert_valid(params);
    let n = data.len();
    let (r, k) = (params.r, params.k);
    let t = Instant::now();
    if n == 0 || k == 0 {
        return (
            OutlierReport::from_outliers(Vec::new(), t.elapsed().as_secs_f64()),
            0,
        );
    }

    // ---- Clustering pass: random-order first-fit with radius r/2 --------
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let half = r / 2.0;
    let mut centers: Vec<u32> = Vec::new();
    let mut members: Vec<Vec<u32>> = Vec::new(); // cluster -> members (incl. center)
    let mut cluster_of: Vec<u32> = vec![0; n];
    for &p in &order {
        let mut placed = false;
        for (ci, &c) in centers.iter().enumerate() {
            if data.dist(p as usize, c as usize) <= half {
                members[ci].push(p);
                cluster_of[p as usize] = ci as u32;
                placed = true;
                break;
            }
        }
        if !placed {
            cluster_of[p as usize] = centers.len() as u32;
            centers.push(p);
            members.push(vec![p]);
        }
    }

    // ---- Pruning and exact counting --------------------------------------
    let flags: Vec<bool> = par_map_strided(n, params.threads, |p| {
        let own = cluster_of[p] as usize;
        // Prune 1: a big cluster proves all members inliers (> k objects
        // means >= k neighbors for each member).
        if members[own].len() > k {
            return false;
        }
        // Members of p's own cluster are all within r (prune 1's geometry).
        let mut count = members[own].len() - 1;
        if count >= k {
            return false;
        }
        for (ci, &c) in centers.iter().enumerate() {
            if ci == own {
                continue;
            }
            let dc = data.dist(p, c as usize);
            if dc - half > r {
                continue; // prune 3: entire cluster out of range
            }
            if dc + half <= r {
                count += members[ci].len(); // prune 2: entire cluster in range
            } else {
                for &q in &members[ci] {
                    if data.dist(p, q as usize) <= r {
                        count += 1;
                        if count >= k {
                            return false;
                        }
                    }
                }
            }
            if count >= k {
                return false;
            }
        }
        true
    });

    let outliers: Vec<u32> = flags
        .iter()
        .enumerate()
        .filter(|(_, &f)| f)
        .map(|(p, _)| p as u32)
        .collect();
    // Cluster structure footprint: center list, membership lists, and the
    // per-object cluster assignment.
    let index_bytes = centers.len() * std::mem::size_of::<u32>()
        + members.iter().map(|m| m.len() * 4 + 24).sum::<usize>()
        + cluster_of.len() * std::mem::size_of::<u32>();
    (
        OutlierReport::from_outliers(outliers, t.elapsed().as_secs_f64()),
        index_bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested_loop;
    use dod_metrics::{VectorSet, L2};
    use rand::Rng;

    fn random_blobs(n: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                if i % 50 == 49 {
                    vec![rng.gen_range(50.0f32..90.0), rng.gen_range(50.0f32..90.0)]
                } else {
                    let c = (i % 3) as f32 * 8.0;
                    vec![c + rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)]
                }
            })
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn matches_nested_loop_on_random_blobs() {
        let data = random_blobs(400, 1);
        for (r, k) in [(1.5, 5), (3.0, 10), (0.5, 2)] {
            let p = DodParams::new(r, k);
            assert_eq!(
                detect(&data, &p, 3).outliers,
                nested_loop::detect(&data, &p, 0).outliers,
                "r={r} k={k}"
            );
        }
    }

    #[test]
    fn independent_of_clustering_seed() {
        let data = random_blobs(300, 2);
        let p = DodParams::new(2.0, 6);
        let a = detect(&data, &p, 0);
        let b = detect(&data, &p, 12345);
        assert_eq!(a.outliers, b.outliers);
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = random_blobs(300, 3);
        let p = DodParams::new(2.0, 6);
        assert_eq!(
            detect(&data, &p, 1).outliers,
            detect(&data, &p.with_threads(4), 1).outliers
        );
    }

    #[test]
    fn whole_cluster_pruning_is_sound_at_boundaries() {
        // Members exactly at r/2 from the center and queries exactly at r:
        // <= comparisons everywhere per Definition 1.
        let data = VectorSet::from_rows(&[vec![0.0f32], vec![0.5], vec![1.0], vec![10.0]], L2);
        let p = DodParams::new(1.0, 2);
        assert_eq!(
            detect(&data, &p, 7).outliers,
            nested_loop::detect(&data, &p, 0).outliers
        );
    }

    #[test]
    fn degenerate_inputs() {
        let empty = VectorSet::from_rows(&[], L2);
        assert!(detect(&empty, &DodParams::new(1.0, 2), 0)
            .outliers
            .is_empty());
        let single = VectorSet::from_rows(&[vec![1.0f32]], L2);
        assert_eq!(
            detect(&single, &DodParams::new(1.0, 1), 0).outliers,
            vec![0]
        );
    }
}
