//! The paper's DOD algorithm (Algorithm 1): proximity-graph filtering plus
//! exact verification, with the §5.5 exact-`K'` shortcut.
//!
//! The algorithm itself lives in a crate-internal `detect_on_graph`
//! function shared by the [`Engine`](crate::Engine) front door (which adds
//! buffer pooling, verification-engine caching and typed errors) and the
//! deprecated [`GraphDod`] shim.

use crate::error::DodError;
use crate::greedy::{greedy_count, BufferPool, TraversalBuffer};
use crate::parallel::par_map_strided;
use crate::params::{DodParams, OutlierReport};
use crate::verify::{ExactCounter, VerifyStrategy};
use dod_graph::ProximityGraph;
use dod_metrics::Dataset;
use std::sync::OnceLock;
use std::time::Instant;

/// Per-object outcome of the filtering phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum FilterOutcome {
    /// Greedy count reached `k` — provably an inlier (Lemma 1).
    #[default]
    Inlier,
    /// Count stayed below `k` — outlier candidate, must be verified.
    Candidate,
    /// Decided outlier via the exact-`K'` shortcut, no verification needed.
    ExactOutlier,
    /// Decided inlier via the exact-`K'` shortcut.
    ExactInlier,
}

/// Runs Algorithm 1 over a prebuilt graph.
///
/// `pool` supplies reusable traversal buffers and `counter` caches the
/// resolved verification engine across queries — both are per-engine state
/// so repeated queries stop re-allocating; one-shot callers pass fresh
/// ones.
#[allow(clippy::too_many_arguments)]
pub(crate) fn detect_on_graph<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    r: f64,
    k: usize,
    threads: usize,
    verify: VerifyStrategy,
    seed: u64,
    pool: &BufferPool,
    counter: &OnceLock<ExactCounter>,
) -> Result<OutlierReport, DodError> {
    DodParams::new(r, k).validate()?;
    let n = data.len();
    if g.node_count() != n {
        return Err(DodError::SizeMismatch {
            index: g.node_count(),
            data: n,
        });
    }
    if n == 0 || k == 0 {
        // k = 0: no object can have "fewer than 0" neighbors.
        return Ok(OutlierReport::from_outliers(Vec::new(), 0.0));
    }

    // ---- Filtering phase (parallel, strided for load balance) -------
    let t = Instant::now();
    let use_shortcut = g.use_exact_shortcut;
    let outcomes: Vec<FilterOutcome> = if threads <= 1 {
        let mut buf = pool.take(n);
        let out = (0..n)
            .map(|p| filter_one(g, data, p, r, k, use_shortcut, &mut buf))
            .collect();
        pool.put(buf);
        out
    } else {
        par_filter_strided(g, data, n, r, k, use_shortcut, threads, pool)
    };
    let filter_secs = t.elapsed().as_secs_f64();

    // ---- Verification phase ------------------------------------------
    let t = Instant::now();
    let candidates: Vec<u32> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, &o)| o == FilterOutcome::Candidate)
        .map(|(p, _)| p as u32)
        .collect();
    let decided_in_filter = outcomes
        .iter()
        .filter(|&&o| o == FilterOutcome::ExactOutlier)
        .count();

    let mut outliers: Vec<u32> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, &o)| o == FilterOutcome::ExactOutlier)
        .map(|(p, _)| p as u32)
        .collect();
    let mut false_positives = 0;
    // Only stand up the exact-counting engine when filtering actually
    // left candidates: resolving `Auto` samples the dataset and the
    // VP-tree engine builds an index, both of which cost real distance
    // evaluations that would be pure waste on an empty workload. Once
    // built it is cached on the engine for every later query.
    if !candidates.is_empty() {
        let counter = counter.get_or_init(|| ExactCounter::build(verify, data, seed));
        let verdicts: Vec<bool> = par_map_strided(candidates.len(), threads, |ci| {
            counter.count(data, candidates[ci] as usize, r, k) < k
        });
        for (ci, &is_outlier) in verdicts.iter().enumerate() {
            if is_outlier {
                outliers.push(candidates[ci]);
            } else {
                false_positives += 1;
            }
        }
    }
    outliers.sort_unstable();
    let verify_secs = t.elapsed().as_secs_f64();

    Ok(OutlierReport {
        outliers,
        candidates: candidates.len(),
        false_positives,
        decided_in_filter,
        filter_secs,
        verify_secs,
    })
}

/// Filter decision for one object (Algorithm 1 lines 3–5, with the §5.5
/// replacement for exact-`K'` nodes).
fn filter_one<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    p: usize,
    r: f64,
    k: usize,
    use_shortcut: bool,
    buf: &mut TraversalBuffer,
) -> FilterOutcome {
    if use_shortcut {
        if let Some(exact) = g.exact.get(&(p as u32)) {
            if k <= exact.dists.len() {
                // The prefix holds the exact K' nearest distances: the
                // number of them within r below k decides p outright.
                let within = exact.dists.partition_point(|&d| d <= r);
                return if within < k {
                    FilterOutcome::ExactOutlier
                } else {
                    FilterOutcome::ExactInlier
                };
            }
        }
    }
    if greedy_count(g, data, p, r, k, buf) < k {
        FilterOutcome::Candidate
    } else {
        FilterOutcome::Inlier
    }
}

/// Strided parallel filtering where every worker owns one pooled traversal
/// buffer for the duration of the phase.
#[allow(clippy::too_many_arguments)]
fn par_filter_strided<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    n: usize,
    r: f64,
    k: usize,
    use_shortcut: bool,
    threads: usize,
    pool: &BufferPool,
) -> Vec<FilterOutcome> {
    let buckets: Vec<Vec<FilterOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mut buf = pool.take(n);
                scope.spawn(move || {
                    let bucket = (t..n)
                        .step_by(threads)
                        .map(|p| filter_one(g, data, p, r, k, use_shortcut, &mut buf))
                        .collect::<Vec<_>>();
                    (buf, bucket)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (buf, bucket) = h.join().expect("filter worker panicked");
                pool.put(buf);
                bucket
            })
            .collect()
    });
    let mut out = vec![FilterOutcome::Inlier; n];
    for (t, bucket) in buckets.into_iter().enumerate() {
        for (j, v) in bucket.into_iter().enumerate() {
            out[t + j * threads] = v;
        }
    }
    out
}

/// Detection report of the deprecated [`GraphDod`] shim — now an alias of
/// the unified [`OutlierReport`].
#[deprecated(since = "0.2.0", note = "use OutlierReport")]
pub type GraphDodReport = OutlierReport;

/// Algorithm 1 bound to a borrowed proximity graph — the pre-`Engine`
/// front door, kept for one release as a thin shim.
///
/// Prefer [`Engine`](crate::Engine): it owns its dataset and index, pools
/// traversal buffers across queries, caches the verification engine, and
/// returns errors instead of panicking.
#[deprecated(
    since = "0.2.0",
    note = "use dod_core::Engine (EngineBuilder::prebuilt_graph for an existing graph)"
)]
pub struct GraphDod<'g> {
    graph: &'g ProximityGraph,
    verify: VerifyStrategy,
    seed: u64,
}

#[allow(deprecated)]
impl<'g> GraphDod<'g> {
    /// Binds the algorithm to a graph with the paper's automatic
    /// verification-strategy choice.
    pub fn new(graph: &'g ProximityGraph) -> Self {
        GraphDod {
            graph,
            verify: VerifyStrategy::Auto,
            seed: 0,
        }
    }

    /// Overrides the verification strategy (the paper fixes VP-tree for
    /// HEPMASS, PAMAP2 and Words and linear scan elsewhere).
    pub fn with_verify(mut self, strategy: VerifyStrategy) -> Self {
        self.verify = strategy;
        self
    }

    /// Seed for the verification engine's internals (VP-tree vantage
    /// points); detection results do not depend on it.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The bound graph.
    pub fn graph(&self) -> &ProximityGraph {
        self.graph
    }

    /// Runs Algorithm 1 and returns the full report.
    ///
    /// # Panics
    /// Panics on an invalid radius or a graph/dataset size mismatch — the
    /// historical contract of this entry point.
    /// [`Engine::query`](crate::Engine::query) surfaces both as
    /// [`DodError`] instead.
    pub fn detect<D: Dataset + ?Sized>(&self, data: &D, params: &DodParams) -> OutlierReport {
        let pool = BufferPool::new();
        let counter = OnceLock::new();
        match detect_on_graph(
            self.graph,
            data,
            params.r,
            params.k,
            params.threads,
            self.verify,
            self.seed,
            &pool,
            &counter,
        ) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::nested_loop;
    use dod_graph::{GraphKind, MrpgParams};
    use dod_metrics::{VectorSet, L2};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered_with_outliers(n: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                if i < n - n / 20 {
                    let c = (i % 4) as f32 * 10.0;
                    vec![c + rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)]
                } else {
                    // planted outliers, far from the clusters
                    vec![
                        rng.gen_range(100.0f32..200.0),
                        rng.gen_range(100.0f32..200.0),
                    ]
                }
            })
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn matches_nested_loop_ground_truth_on_mrpg() {
        let data = clustered_with_outliers(500, 1);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(8));
        let params = DodParams::new(2.0, 6);
        let report = GraphDod::new(&g).detect(&data, &params);
        let truth = nested_loop::detect(&data, &params, 0);
        assert_eq!(report.outliers, truth.outliers);
    }

    #[test]
    fn matches_ground_truth_on_kgraph_and_nsw() {
        let data = clustered_with_outliers(400, 2);
        let params = DodParams::new(2.0, 5);
        let truth = nested_loop::detect(&data, &params, 0);
        let kg = dod_graph::mrpg::build_kgraph(&data, 8, 1, 0);
        assert_eq!(
            GraphDod::new(&kg).detect(&data, &params).outliers,
            truth.outliers
        );
        let nsw = dod_graph::mrpg::build_nsw(&data, 8, 0);
        assert_eq!(
            GraphDod::new(&nsw).detect(&data, &params).outliers,
            truth.outliers
        );
    }

    #[test]
    fn parallel_equals_sequential() {
        let data = clustered_with_outliers(400, 3);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(8));
        let dod = GraphDod::new(&g);
        let seq = dod.detect(&data, &DodParams::new(2.0, 6));
        let par = dod.detect(&data, &DodParams::new(2.0, 6).with_threads(4));
        assert_eq!(seq.outliers, par.outliers);
        assert_eq!(seq.candidates, par.candidates);
        assert_eq!(seq.false_positives, par.false_positives);
    }

    #[test]
    fn shortcut_decides_planted_outliers_in_filter() {
        let data = clustered_with_outliers(600, 4);
        let mut p = MrpgParams::new(8);
        p.exact_m = Some(64); // cover the 30 planted outliers
        let (g, _) = dod_graph::mrpg::build(&data, &p);
        let report = GraphDod::new(&g).detect(&data, &DodParams::new(2.0, 6));
        assert!(
            report.decided_in_filter > 0,
            "no outlier decided by the K' shortcut"
        );
        // Shortcut decisions are final: they never appear as candidates.
        let truth = nested_loop::detect(&data, &DodParams::new(2.0, 6), 0);
        assert_eq!(report.outliers, truth.outliers);
    }

    #[test]
    fn k_zero_returns_no_outliers() {
        let data = clustered_with_outliers(100, 5);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(5));
        let report = GraphDod::new(&g).detect(&data, &DodParams::new(1.0, 0));
        assert!(report.outliers.is_empty());
    }

    #[test]
    fn k_larger_than_n_makes_everything_an_outlier() {
        let data = clustered_with_outliers(50, 6);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(5));
        let report = GraphDod::new(&g).detect(&data, &DodParams::new(1e9, 50));
        assert_eq!(report.outliers.len(), 50);
    }

    #[test]
    fn r_zero_with_duplicates() {
        // Exact duplicates are neighbors at distance 0.
        let mut rows = vec![vec![1.0f32, 1.0]; 30];
        rows.push(vec![50.0, 50.0]); // singleton
        let data = VectorSet::from_rows(&rows, L2);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(4));
        let report = GraphDod::new(&g).detect(&data, &DodParams::new(0.0, 1));
        assert_eq!(report.outliers, vec![30]);
    }

    #[test]
    fn mismatched_graph_size_panics() {
        let data = clustered_with_outliers(50, 7);
        let g = dod_graph::ProximityGraph::new(10, GraphKind::KGraph);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            GraphDod::new(&g).detect(&data, &DodParams::new(1.0, 2))
        }));
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn invalid_radius_panics_on_the_deprecated_shim() {
        let data = clustered_with_outliers(30, 9);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(4));
        let _ = GraphDod::new(&g).detect(&data, &DodParams::new(f64::NAN, 2));
    }

    #[test]
    fn report_accounting_is_consistent() {
        let data = clustered_with_outliers(400, 8);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(8));
        let report = GraphDod::new(&g).detect(&data, &DodParams::new(2.0, 6));
        // candidates = verified outliers + false positives.
        let verified_outliers = report.outliers.len() - report.decided_in_filter;
        assert_eq!(
            report.candidates,
            verified_outliers + report.false_positives
        );
    }
}
