//! The paper's DOD algorithm (Algorithm 1): proximity-graph filtering plus
//! exact verification, with the §5.5 exact-`K'` shortcut.
//!
//! The algorithm itself lives in a crate-internal `detect_on_graph`
//! function served through the [`Engine`](crate::Engine) front door, which
//! adds buffer pooling, verification-engine caching and typed errors.

use crate::error::DodError;
use crate::greedy::{greedy_count, BufferPool, TraversalBuffer};
use crate::parallel::par_map_strided;
use crate::params::{CostReport, DodParams, OutlierReport};
use crate::verify::{ExactCounter, VerifyStrategy};
use dod_graph::ProximityGraph;
use dod_metrics::{Dataset, DistanceCounter};
use std::sync::OnceLock;
use std::time::Instant;

/// Per-object outcome of the filtering phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum FilterOutcome {
    /// Greedy count reached `k` — provably an inlier (Lemma 1).
    #[default]
    Inlier,
    /// Count stayed below `k` — outlier candidate, must be verified.
    Candidate,
    /// Decided outlier via the exact-`K'` shortcut, no verification needed.
    ExactOutlier,
    /// Decided inlier via the exact-`K'` shortcut.
    ExactInlier,
}

/// Runs Algorithm 1 over a prebuilt graph.
///
/// `pool` supplies reusable traversal buffers and `counter` caches the
/// resolved verification engine across queries — both are per-engine state
/// so repeated queries stop re-allocating; one-shot callers pass fresh
/// ones.
#[allow(clippy::too_many_arguments)]
pub(crate) fn detect_on_graph<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    r: f64,
    k: usize,
    threads: usize,
    verify: VerifyStrategy,
    seed: u64,
    pool: &BufferPool,
    counter: &OnceLock<ExactCounter>,
) -> Result<OutlierReport, DodError> {
    DodParams::new(r, k).validate()?;
    let n = data.len();
    if g.node_count() != n {
        return Err(DodError::SizeMismatch {
            index: g.node_count(),
            data: n,
        });
    }
    if n == 0 || k == 0 {
        // k = 0: no object can have "fewer than 0" neighbors.
        return Ok(OutlierReport::from_outliers(Vec::new(), 0.0));
    }

    // ---- Filtering phase (parallel, strided for load balance) -------
    let t = Instant::now();
    let use_shortcut = g.use_exact_shortcut;
    let (outcomes, (filter_dist_evals, hops)): (Vec<FilterOutcome>, (u64, u64)) = if threads <= 1 {
        let mut buf = pool.take(n);
        let out = (0..n)
            .map(|p| filter_one(g, data, p, r, k, use_shortcut, &mut buf))
            .collect();
        let cost = buf.take_cost();
        pool.put(buf);
        (out, cost)
    } else {
        par_filter_strided(g, data, n, r, k, use_shortcut, threads, pool)
    };
    let filter_secs = t.elapsed().as_secs_f64();

    // ---- Verification phase ------------------------------------------
    let t = Instant::now();
    let candidates: Vec<u32> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, &o)| o == FilterOutcome::Candidate)
        .map(|(p, _)| p as u32)
        .collect();
    let decided_in_filter = outcomes
        .iter()
        .filter(|&&o| o == FilterOutcome::ExactOutlier)
        .count();

    let mut outliers: Vec<u32> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, &o)| o == FilterOutcome::ExactOutlier)
        .map(|(p, _)| p as u32)
        .collect();
    let mut false_positives = 0;
    // Only stand up the exact-counting engine when filtering actually
    // left candidates: resolving `Auto` samples the dataset and the
    // VP-tree engine builds an index, both of which cost real distance
    // evaluations that would be pure waste on an empty workload. Once
    // built it is cached on the engine for every later query.
    let mut verify_dist_evals = 0;
    if !candidates.is_empty() {
        let counter = counter.get_or_init(|| ExactCounter::build(verify, data, seed));
        // Count only the verification itself: `ExactCounter::build` above
        // is cached engine state, excluded from per-query cost by design.
        let counted = DistanceCounter::new(data);
        let verdicts: Vec<bool> = par_map_strided(candidates.len(), threads, |ci| {
            counter.count(&counted, candidates[ci] as usize, r, k) < k
        });
        verify_dist_evals = counted.calls();
        for (ci, &is_outlier) in verdicts.iter().enumerate() {
            if is_outlier {
                outliers.push(candidates[ci]);
            } else {
                false_positives += 1;
            }
        }
    }
    outliers.sort_unstable();
    let verify_secs = t.elapsed().as_secs_f64();

    Ok(OutlierReport {
        outliers,
        candidates: candidates.len(),
        false_positives,
        decided_in_filter,
        filter_secs,
        verify_secs,
        cost: CostReport {
            filter_dist_evals,
            verify_dist_evals,
            hops,
        },
    })
}

/// Filter decision for one object (Algorithm 1 lines 3–5, with the §5.5
/// replacement for exact-`K'` nodes).
fn filter_one<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    p: usize,
    r: f64,
    k: usize,
    use_shortcut: bool,
    buf: &mut TraversalBuffer,
) -> FilterOutcome {
    if use_shortcut {
        if let Some(exact) = g.exact.get(&(p as u32)) {
            if k <= exact.dists.len() {
                // The prefix holds the exact K' nearest distances: the
                // number of them within r below k decides p outright.
                let within = exact.dists.partition_point(|&d| d <= r);
                return if within < k {
                    FilterOutcome::ExactOutlier
                } else {
                    FilterOutcome::ExactInlier
                };
            }
        }
    }
    if greedy_count(g, data, p, r, k, buf) < k {
        FilterOutcome::Candidate
    } else {
        FilterOutcome::Inlier
    }
}

/// Strided parallel filtering where every worker owns one pooled traversal
/// buffer for the duration of the phase. Returns the outcomes plus the
/// summed `(dist_evals, hops)` drained from every worker's buffer.
#[allow(clippy::too_many_arguments)]
fn par_filter_strided<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    n: usize,
    r: f64,
    k: usize,
    use_shortcut: bool,
    threads: usize,
    pool: &BufferPool,
) -> (Vec<FilterOutcome>, (u64, u64)) {
    let mut dist_evals = 0u64;
    let mut hops = 0u64;
    let buckets: Vec<Vec<FilterOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mut buf = pool.take(n);
                scope.spawn(move || {
                    let bucket = (t..n)
                        .step_by(threads)
                        .map(|p| filter_one(g, data, p, r, k, use_shortcut, &mut buf))
                        .collect::<Vec<_>>();
                    (buf, bucket)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (mut buf, bucket) = h.join().expect("filter worker panicked");
                let (d, hp) = buf.take_cost();
                dist_evals += d;
                hops += hp;
                pool.put(buf);
                bucket
            })
            .collect()
    });
    let mut out = vec![FilterOutcome::Inlier; n];
    for (t, bucket) in buckets.into_iter().enumerate() {
        for (j, v) in bucket.into_iter().enumerate() {
            out[t + j * threads] = v;
        }
    }
    (out, (dist_evals, hops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::nested_loop;
    use dod_graph::MrpgParams;
    use dod_metrics::{VectorSet, L2};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Algorithm 1 over a prebuilt graph, through the `Engine` front door
    /// (the only entry point since the deprecated `GraphDod` shim was
    /// removed).
    fn detect(g: ProximityGraph, data: &VectorSet<L2>, params: &DodParams) -> OutlierReport {
        Engine::builder(data)
            .prebuilt_graph(g)
            .build()
            .expect("graph covers the dataset")
            .query(
                crate::Query::new(params.r, params.k)
                    .expect("valid query")
                    .with_threads(params.threads),
            )
            .expect("query")
    }

    fn clustered_with_outliers(n: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                if i < n - n / 20 {
                    let c = (i % 4) as f32 * 10.0;
                    vec![c + rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)]
                } else {
                    // planted outliers, far from the clusters
                    vec![
                        rng.gen_range(100.0f32..200.0),
                        rng.gen_range(100.0f32..200.0),
                    ]
                }
            })
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn matches_nested_loop_ground_truth_on_mrpg() {
        let data = clustered_with_outliers(500, 1);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(8));
        let params = DodParams::new(2.0, 6);
        let report = detect(g, &data, &params);
        let truth = nested_loop::detect(&data, &params, 0);
        assert_eq!(report.outliers, truth.outliers);
    }

    #[test]
    fn matches_ground_truth_on_kgraph_and_nsw() {
        let data = clustered_with_outliers(400, 2);
        let params = DodParams::new(2.0, 5);
        let truth = nested_loop::detect(&data, &params, 0);
        let kg = dod_graph::mrpg::build_kgraph(&data, 8, 1, 0);
        assert_eq!(detect(kg, &data, &params).outliers, truth.outliers);
        let nsw = dod_graph::mrpg::build_nsw(&data, 8, 0);
        assert_eq!(detect(nsw, &data, &params).outliers, truth.outliers);
    }

    #[test]
    fn parallel_equals_sequential() {
        let data = clustered_with_outliers(400, 3);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(8));
        let engine = Engine::builder(&data)
            .prebuilt_graph(g)
            .build()
            .expect("build");
        let q = crate::Query::new(2.0, 6).expect("valid");
        let seq = engine.query(q).expect("query");
        let par = engine.query(q.with_threads(4)).expect("query");
        assert_eq!(seq.outliers, par.outliers);
        assert_eq!(seq.candidates, par.candidates);
        assert_eq!(seq.false_positives, par.false_positives);
        // Same walks, same verifications — the cost tally is
        // thread-count-invariant.
        assert_eq!(seq.cost, par.cost);
    }

    #[test]
    fn shortcut_decides_planted_outliers_in_filter() {
        let data = clustered_with_outliers(600, 4);
        let mut p = MrpgParams::new(8);
        p.exact_m = Some(64); // cover the 30 planted outliers
        let (g, _) = dod_graph::mrpg::build(&data, &p);
        let report = detect(g, &data, &DodParams::new(2.0, 6));
        assert!(
            report.decided_in_filter > 0,
            "no outlier decided by the K' shortcut"
        );
        // Shortcut decisions are final: they never appear as candidates.
        let truth = nested_loop::detect(&data, &DodParams::new(2.0, 6), 0);
        assert_eq!(report.outliers, truth.outliers);
    }

    #[test]
    fn k_zero_returns_no_outliers() {
        let data = clustered_with_outliers(100, 5);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(5));
        let report = detect(g, &data, &DodParams::new(1.0, 0));
        assert!(report.outliers.is_empty());
    }

    #[test]
    fn k_larger_than_n_makes_everything_an_outlier() {
        let data = clustered_with_outliers(50, 6);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(5));
        let report = detect(g, &data, &DodParams::new(1e9, 50));
        assert_eq!(report.outliers.len(), 50);
    }

    #[test]
    fn r_zero_with_duplicates() {
        // Exact duplicates are neighbors at distance 0.
        let mut rows = vec![vec![1.0f32, 1.0]; 30];
        rows.push(vec![50.0, 50.0]); // singleton
        let data = VectorSet::from_rows(&rows, L2);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(4));
        let report = detect(g, &data, &DodParams::new(0.0, 1));
        assert_eq!(report.outliers, vec![30]);
    }

    #[test]
    fn report_accounting_is_consistent() {
        let data = clustered_with_outliers(400, 8);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(8));
        let report = detect(g, &data, &DodParams::new(2.0, 6));
        // candidates = verified outliers + false positives.
        let verified_outliers = report.outliers.len() - report.decided_in_filter;
        assert_eq!(
            report.candidates,
            verified_outliers + report.false_positives
        );
    }

    #[test]
    fn cost_report_reflects_both_phases() {
        let data = clustered_with_outliers(400, 9);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(8));
        let report = detect(g, &data, &DodParams::new(2.0, 6));
        assert!(report.cost.filter_dist_evals > 0, "filter walked for free?");
        assert!(report.cost.hops > 0, "walks expand at least their seeds");
        if report.candidates > 0 {
            assert!(report.cost.verify_dist_evals > 0);
        }
        // The graph filter must beat brute force on a clustered set.
        let pp = report.cost.pruning_power(data.len());
        assert!(pp > 0.0 && pp <= 1.0, "pruning power {pp} out of range");
    }

    #[test]
    fn k_zero_report_has_zero_cost() {
        let data = clustered_with_outliers(100, 10);
        let (g, _) = dod_graph::mrpg::build(&data, &MrpgParams::new(5));
        let report = detect(g, &data, &DodParams::new(1.0, 0));
        assert_eq!(report.cost, CostReport::default());
    }
}
