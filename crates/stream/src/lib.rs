//! Streaming sliding-window exact distance-based outlier detection.
//!
//! The batch crates answer one `(r, k)` query over one fixed dataset. Real
//! deployments watch *streams*: points arrive continuously, old ones age
//! out, and "who are the outliers right now?" is asked after every slide.
//! Rebuilding an index and recounting from scratch per slide costs
//! `O(W²)`-ish work for a window of `W` points; this crate maintains the
//! answer incrementally instead.
//!
//! # How it stays exact and cheap
//!
//! * **Arrival order is expiry order** (timestamps must be non-decreasing),
//!   so each resident's neighbors split into *preceding* ones — which
//!   expire in a known order, making expiry a pointer bump — and
//!   *succeeding* ones, which can never expire first. A resident with ≥ `k`
//!   succeeding neighbors is a **safe inlier** (DOLPHIN's observation,
//!   carried over from `dod_core::dolphin`): it can never become an outlier,
//!   so all tracking stops.
//! * **Discovery is pluggable** ([`StreamIndex`]): the
//!   [`ExhaustiveIndex`] backend scans the window once per insertion and
//!   keeps every count exact; the [`GraphIndex`] backend wires new points
//!   into a lazily-repaired proximity graph (tombstoned expiries, periodic
//!   compaction) and discovers neighbors with the paper's greedy ball walk
//!   ([`dod_core::greedy_collect`]) — a certified subset, so counts are
//!   lower bounds.
//! * **Verdicts are verified** the way the paper's Algorithm 1 verifies
//!   filter survivors: a candidate whose maintained count is below `k` and
//!   not known-exact gets a lazy exact repair against the window before it
//!   is reported. Repairs remember how far they got (`exact_upto`), so a
//!   candidate re-checked after one slide rescans one point, not the
//!   window; [`StreamDetector::audit`] recomputes everything from scratch
//!   through `dod_core::verify` as an independent cross-check.
//!
//! Both backends therefore return the *identical, exact* outlier set — the
//! property tests pin them to `dod_core::nested_loop` over a window
//! snapshot after every slide.
//!
//! ```
//! use dod_core::Query;
//! use dod_stream::{Backend, GraphParams, StreamDetector, VectorSpace, WindowSpec};
//! use dod_metrics::L2;
//!
//! // Keep the 128 most recent readings; flag points with < 3 neighbors
//! // within 0.8 — the same (r, k) Query type the batch Engine takes.
//! let mut det = StreamDetector::open(
//!     VectorSpace::new(L2, 2),
//!     Query::new(0.8, 3)?,
//!     WindowSpec::Count(128),
//!     Backend::Graph(GraphParams::default()),
//! )?;
//! for i in 0..200u32 {
//!     let phase = (i % 16) as f32 / 16.0;
//!     det.insert(vec![phase.sin(), phase.cos()]);
//! }
//! det.insert(vec![40.0, 40.0]); // a reading far off the manifold
//! assert_eq!(det.outliers(), vec![200]);
//! // Or in the unified batch result shape: ids become window positions,
//! // and seq 200 is the window's last resident (position 127 of 128).
//! assert_eq!(det.report().outliers, vec![127]);
//! # Ok::<(), dod_core::DodError>(())
//! ```

mod counts;
pub mod detector;
pub mod graph;
pub mod index;
mod seqmap;
pub mod space;
pub mod window;

pub use detector::{Backend, SlideReport, StreamDetector, StreamParams, StreamStats};
pub use graph::{GraphIndex, GraphParams};
pub use index::{ExhaustiveIndex, IndexHealth, StreamIndex, DEGREE_BUCKETS, DEGREE_BUCKET_BOUNDS};
pub use space::{Space, StringSpace, VectorSpace};
pub use window::{WindowSpec, WindowView};
