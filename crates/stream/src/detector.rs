//! The streaming front door: [`StreamDetector`].
//!
//! One object owns the window, the per-resident neighbor knowledge and a
//! [`StreamIndex`] backend. Each insertion expires due residents, runs the
//! backend's discovery and folds the result into the incremental counts;
//! [`outliers`](StreamDetector::outliers) then answers from the maintained
//! state, exactly — candidates whose knowledge is incomplete get a lazy
//! exact repair that scans only the window suffix that arrived since their
//! last repair, so repeated queries between slides cost `O(changed
//! objects)`, not `O(W²)`.

use crate::counts::NeighborState;
use crate::graph::{GraphIndex, GraphParams};
use crate::index::{ExhaustiveIndex, IndexHealth, StreamIndex};
use crate::seqmap::SeqMap;
use crate::space::Space;
use crate::window::{WindowSpec, WindowStore, WindowView};
use dod_core::verify::ExactCounter;
use dod_core::{CostReport, DodError, OutlierReport, Query, VerifyStrategy};
use dod_metrics::Dataset;
use std::time::Instant;

/// The streaming query: Definition 2's `(r, k)` plus the window bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamParams {
    /// Distance threshold.
    pub r: f64,
    /// Count threshold: a window resident is an outlier iff fewer than `k`
    /// other residents lie within `r` of it.
    pub k: usize,
    /// What bounds the window.
    pub window: WindowSpec,
}

impl StreamParams {
    /// A count-based window of the `w` most recent points.
    pub fn count(r: f64, k: usize, w: usize) -> Self {
        StreamParams {
            r,
            k,
            window: WindowSpec::Count(w),
        }
    }

    /// A time-based window with the given horizon.
    pub fn timed(r: f64, k: usize, horizon: f64) -> Self {
        StreamParams {
            r,
            k,
            window: WindowSpec::Time(horizon),
        }
    }

    /// Binds a batch-vocabulary [`Query`] to a window — the same `(r, k)`
    /// type [`dod_core::Engine::query`] takes. A `Query` is validated at
    /// construction, so only the window needs checking afterwards.
    ///
    /// Only `r` and `k` carry over: a [`Query::with_threads`] override is
    /// ignored, because one window is single-threaded by design —
    /// parallelism comes from partitioning the stream across windows
    /// (`dod_shard`'s sharded detector), not from threading one window.
    pub fn from_query(query: Query, window: WindowSpec) -> Self {
        StreamParams {
            r: query.r(),
            k: query.k(),
            window,
        }
    }

    /// Validates the query, surfacing a negative/NaN radius as
    /// [`DodError::InvalidRadius`] and a bad window as
    /// [`DodError::InvalidWindow`].
    pub fn validate(&self) -> Result<(), DodError> {
        if !(self.r >= 0.0 && self.r.is_finite()) {
            return Err(DodError::InvalidRadius { r: self.r });
        }
        self.window.validate()
    }
}

/// Which [`StreamIndex`] backend a detector runs on.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Exact incremental counter (`O(W)` distances per slide, zero
    /// verification).
    Exhaustive,
    /// Lazily-repaired proximity graph (sublinear discovery, lazy exact
    /// repair).
    Graph(GraphParams),
}

/// What one insertion did to the window.
#[derive(Debug, Clone)]
pub struct SlideReport {
    /// Seq assigned to the inserted point.
    pub seq: u64,
    /// Seqs expired by this slide, oldest first.
    pub expired: Vec<u64>,
    /// Window size after the slide.
    pub window_len: usize,
    /// What this slide cost: distance evaluations and graph hops spent
    /// on neighbor discovery, expiry maintenance and any sampled recall
    /// audit that fired. Slide-time work is all discovery (filter-side);
    /// verification cost appears on query reports, not slides.
    pub cost: CostReport,
}

impl SlideReport {
    /// Resolves the slide into the unified batch-vocabulary
    /// [`OutlierReport`] — the same shape [`dod_core::Engine::query`]
    /// returns, so batch and stream answers compare through one type.
    /// Equivalent to [`StreamDetector::report`]; see there for the id
    /// mapping (window positions, not seqs).
    ///
    /// The report always describes the detector's *current* window, so
    /// call this on the `SlideReport` you were just handed, before any
    /// further insert. A stale handle (the detector has slid past
    /// `self.seq`) is rejected as `Err(self)` rather than silently
    /// answering for a window this slide did not produce.
    pub fn into_outlier_report<S: Space>(
        self,
        det: &mut StreamDetector<S>,
    ) -> Result<OutlierReport, SlideReport> {
        if self.seq + 1 != det.win.next_seq() {
            return Err(self);
        }
        Ok(det.report())
    }
}

/// Per-query filter/verify accounting collected by
/// `outliers_instrumented`.
#[derive(Debug, Clone, Copy, Default)]
struct QueryCounters {
    candidates: usize,
    false_positives: usize,
    decided_in_filter: usize,
    repair_secs: f64,
}

/// Lifetime counters (cheap, always on).
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Points ingested (owned and ghost alike).
    pub inserts: u64,
    /// Ghost points ingested via
    /// [`insert_ghost_at`](StreamDetector::insert_ghost_at) — replicas
    /// that feed neighbor counts but are never reported.
    pub ghost_inserts: u64,
    /// Points expired.
    pub expirations: u64,
    /// Objects promoted to safe inliers (≥ `k` succeeding neighbors —
    /// tracking stopped forever).
    pub safe_promotions: u64,
    /// Full-window exact repairs performed by queries.
    pub full_repairs: u64,
    /// Suffix-only exact repairs performed by queries.
    pub incremental_repairs: u64,
    /// Wall time spent inside [`ingest`](StreamDetector::insert)
    /// (neighbor discovery, index insert) *excluding* expiry, in
    /// nanoseconds. With [`expiry_nanos`](Self::expiry_nanos) this gives
    /// scrapes the per-slide insert/expiry time split.
    pub insert_nanos: u64,
    /// Wall time spent expiring due residents, in nanoseconds.
    pub expiry_nanos: u64,
    /// Sampled discovery-recall audits performed.
    pub recall_audits: u64,
    /// Across all audited residents: in-range neighbors the backend's
    /// discovery actually found, each resident capped at `k` (finding
    /// more than `k` cannot change a verdict).
    pub recall_hits: u64,
    /// Across all audited residents: in-range neighbors a brute-force
    /// scan found, capped at `k` — the denominator of the recall
    /// estimate.
    pub recall_expected: u64,
    /// Distance evaluations spent in insertion-time neighbor discovery.
    pub insert_dist_evals: u64,
    /// Graph hops spent in insertion-time neighbor discovery.
    pub insert_hops: u64,
    /// Distance evaluations spent on expiry maintenance (compaction,
    /// re-pruning). Zero on structureless backends.
    pub expiry_dist_evals: u64,
    /// Graph hops spent on expiry maintenance.
    pub expiry_hops: u64,
    /// Distance evaluations spent by sampled recall audits (brute-force
    /// truth scans plus read-only re-discovery).
    pub audit_dist_evals: u64,
    /// Graph hops spent by sampled recall audits.
    pub audit_hops: u64,
    /// Distance evaluations spent by query-time exact repairs.
    pub query_dist_evals: u64,
    /// Query-time candidates: residents whose verdict needed an exact
    /// repair before it was trusted.
    pub query_candidates: u64,
    /// Query-time candidates whose repair came back inlier.
    pub query_false_positives: u64,
    /// Query-time outliers decided from already-exact maintained
    /// knowledge (no repair).
    pub query_decided_in_filter: u64,
}

impl StreamStats {
    /// Folds another detector's counters into this one — the one place
    /// multi-detector aggregation (the sharded engine) sums stats, so a
    /// new counter field cannot be forgotten in one of the call sites.
    pub fn absorb(&mut self, other: &StreamStats) {
        let StreamStats {
            inserts,
            ghost_inserts,
            expirations,
            safe_promotions,
            full_repairs,
            incremental_repairs,
            insert_nanos,
            expiry_nanos,
            recall_audits,
            recall_hits,
            recall_expected,
            insert_dist_evals,
            insert_hops,
            expiry_dist_evals,
            expiry_hops,
            audit_dist_evals,
            audit_hops,
            query_dist_evals,
            query_candidates,
            query_false_positives,
            query_decided_in_filter,
        } = other;
        self.inserts += inserts;
        self.ghost_inserts += ghost_inserts;
        self.expirations += expirations;
        self.safe_promotions += safe_promotions;
        self.full_repairs += full_repairs;
        self.incremental_repairs += incremental_repairs;
        self.insert_nanos += insert_nanos;
        self.expiry_nanos += expiry_nanos;
        self.recall_audits += recall_audits;
        self.recall_hits += recall_hits;
        self.recall_expected += recall_expected;
        self.insert_dist_evals += insert_dist_evals;
        self.insert_hops += insert_hops;
        self.expiry_dist_evals += expiry_dist_evals;
        self.expiry_hops += expiry_hops;
        self.audit_dist_evals += audit_dist_evals;
        self.audit_hops += audit_hops;
        self.query_dist_evals += query_dist_evals;
        self.query_candidates += query_candidates;
        self.query_false_positives += query_false_positives;
        self.query_decided_in_filter += query_decided_in_filter;
    }

    /// The sampled discovery-recall estimate: hits over expected across
    /// every audited resident so far. `1.0` before any audit has found a
    /// non-isolated resident — an empty sample is no evidence of
    /// degradation. Always in `[0, 1]`: discovery certifies subsets of
    /// the true neighbor set, so hits never exceed expected.
    pub fn recall_estimate(&self) -> f64 {
        if self.recall_expected == 0 {
            1.0
        } else {
            self.recall_hits as f64 / self.recall_expected as f64
        }
    }
}

/// A sliding-window exact distance-based outlier detector.
///
/// ```
/// use dod_core::Query;
/// use dod_stream::{Backend, StreamDetector, VectorSpace, WindowSpec};
/// use dod_metrics::L2;
///
/// let mut det = StreamDetector::open(
///     VectorSpace::new(L2, 1),
///     Query::new(1.5, 2)?,
///     WindowSpec::Count(64),
///     Backend::Exhaustive,
/// )?;
/// for i in 0..64 {
///     det.insert(vec![(i % 8) as f32 * 0.5]);
/// }
/// det.insert(vec![100.0]); // far from everything
/// let out = det.outliers();
/// assert_eq!(out, vec![64]);
/// assert_eq!(out, det.audit()); // from-scratch cross-check agrees
/// # Ok::<(), dod_core::DodError>(())
/// ```
pub struct StreamDetector<S: Space> {
    space: S,
    params: StreamParams,
    win: WindowStore<S::Point>,
    /// Neighbor knowledge for live, non-safe residents.
    states: SeqMap<NeighborState>,
    index: Box<dyn StreamIndex<S> + Send>,
    stats: StreamStats,
    /// Slides between sampled recall audits (≥ 1; see
    /// [`set_audit_params`](Self::set_audit_params)).
    audit_every: u64,
    /// Residents re-discovered per audit (`0` = auditing disabled).
    audit_sample: usize,
    /// Slides since the last audit.
    since_audit: u64,
}

impl<S: Space> StreamDetector<S> {
    /// Opens a detector in the batch vocabulary: the same [`Query`] type
    /// [`dod_core::Engine::query`] takes, bound to a window, on the chosen
    /// backend. Only the query's `r` and `k` apply — see
    /// [`StreamParams::from_query`] for why a thread override is ignored.
    ///
    /// ```
    /// use dod_core::Query;
    /// use dod_stream::{Backend, StreamDetector, VectorSpace, WindowSpec};
    /// use dod_metrics::L2;
    ///
    /// let mut det = StreamDetector::open(
    ///     VectorSpace::new(L2, 1),
    ///     Query::new(1.5, 2)?,
    ///     WindowSpec::Count(64),
    ///     Backend::Exhaustive,
    /// )?;
    /// det.insert(vec![0.0]);
    /// # Ok::<(), dod_core::DodError>(())
    /// ```
    pub fn open(
        space: S,
        query: Query,
        window: WindowSpec,
        backend: Backend,
    ) -> Result<Self, DodError>
    where
        S: 'static,
    {
        Self::try_with_backend(space, StreamParams::from_query(query, window), backend)
    }

    /// A detector on the [`Backend::Exhaustive`] backend, or a
    /// [`DodError`] for invalid parameters.
    pub fn try_new(space: S, params: StreamParams) -> Result<Self, DodError>
    where
        S: 'static,
    {
        Self::try_with_backend(space, params, Backend::Exhaustive)
    }

    /// A detector on the chosen backend, or a [`DodError`] for invalid
    /// parameters.
    pub fn try_with_backend(
        space: S,
        params: StreamParams,
        backend: Backend,
    ) -> Result<Self, DodError>
    where
        S: 'static,
    {
        let (index, audit): (Box<dyn StreamIndex<S> + Send>, _) = match backend {
            Backend::Exhaustive => (Box::new(ExhaustiveIndex::default()), None),
            Backend::Graph(gp) => {
                gp.validate()?;
                let audit = (gp.sample_rate, gp.audit_sample);
                (Box::new(GraphIndex::new(gp, params.k)), Some(audit))
            }
        };
        let mut det = Self::try_with_index(space, params, index)?;
        if let Some((sample_rate, audit_sample)) = audit {
            det.set_audit_params(sample_rate, audit_sample)?;
        }
        Ok(det)
    }

    /// A detector on a custom [`StreamIndex`] implementation, or a
    /// [`DodError`] for invalid parameters.
    pub fn try_with_index(
        space: S,
        params: StreamParams,
        index: Box<dyn StreamIndex<S> + Send>,
    ) -> Result<Self, DodError> {
        params.validate()?;
        let defaults = GraphParams::default();
        Ok(StreamDetector {
            space,
            params,
            win: WindowStore::new(),
            states: SeqMap::default(),
            index,
            stats: StreamStats::default(),
            audit_every: defaults.sample_rate,
            audit_sample: defaults.audit_sample,
            since_audit: 0,
        })
    }

    /// Reconfigures the sampled recall auditor: audit `audit_sample`
    /// residents every `sample_rate` slides. A zero `sample_rate` is a
    /// typed [`DodError::InvalidSpec`] (disable with `audit_sample = 0`
    /// instead); no knob is ever silently clamped.
    pub fn set_audit_params(
        &mut self,
        sample_rate: u64,
        audit_sample: usize,
    ) -> Result<(), DodError> {
        if sample_rate == 0 {
            return Err(DodError::InvalidSpec {
                reason: "sample_rate must be >= 1 (set audit_sample = 0 to disable audits)"
                    .to_string(),
            });
        }
        self.audit_every = sample_rate;
        self.audit_sample = audit_sample;
        Ok(())
    }

    /// Ingests a point at the next unit-spaced tick (`0, 1, 2, …`).
    pub fn insert(&mut self, point: S::Point) -> SlideReport {
        let t = if self.win.now().is_finite() {
            self.win.now() + 1.0
        } else {
            0.0
        };
        self.insert_at(point, t)
    }

    /// Ingests a point at an explicit timestamp.
    ///
    /// # Panics
    /// Panics if `time` is NaN or behind the latest observed timestamp
    /// (streams are ordered by definition; reorder upstream).
    pub fn insert_at(&mut self, point: S::Point, time: f64) -> SlideReport {
        self.ingest(point, time, false)
    }

    /// Ingests a *ghost* at an explicit timestamp: a replica of a point
    /// owned by another detector, inserted so this window's neighbor
    /// counts stay exact across a partition boundary.
    ///
    /// A ghost is a first-class window resident for every count it feeds —
    /// discovery sees it, repairs scan it, it expires on schedule, and its
    /// arrival can promote residents to safe inliers — but it gets no
    /// neighbor state of its own, so [`outliers`](Self::outliers) and
    /// [`report`](Self::report) never name it. ([`audit`](Self::audit)
    /// recounts *every* resident, ghosts included; a sharded caller
    /// filters those out, as `dod_shard` does.)
    ///
    /// # Panics
    /// Panics if `time` regresses, as for [`insert_at`](Self::insert_at).
    pub fn insert_ghost_at(&mut self, point: S::Point, time: f64) -> SlideReport {
        self.ingest(point, time, true)
    }

    /// Shared insertion path: expire, push, discover, fold counts. `ghost`
    /// skips only the new point's own neighbor state.
    fn ingest(&mut self, point: S::Point, time: f64, ghost: bool) -> SlideReport {
        let t0 = std::time::Instant::now();
        let expiry_before = self.stats.expiry_nanos;
        let cost_before = self.slide_cost_totals();
        let point = self.space.prepare(point);
        self.win.advance_clock(time);
        let expired = self.expire_due(true);
        let seq = self.win.push(point, time);
        self.stats.inserts += 1;
        if ghost {
            self.stats.ghost_inserts += 1;
        }

        let discovered = {
            let view = WindowView::new(&self.win, &self.space);
            self.index.on_insert(&view, seq, self.params.r)
        };
        // Drain the backend's discovery tally now, before the audit below
        // can fire — each phase drains its own cost.
        let (d, h) = self.index.take_cost();
        self.stats.insert_dist_evals += d;
        self.stats.insert_hops += h;
        let k = self.params.k;
        if k > 0 {
            for &d in &discovered {
                let Some(st) = self.states.get_mut(&d) else {
                    continue;
                };
                st.add_succ(seq);
                if st.succ_count() >= k {
                    self.states.remove(&d);
                    self.stats.safe_promotions += 1;
                }
            }
            if !ghost {
                self.states.insert(
                    seq,
                    NeighborState::new(seq, discovered, self.index.is_exact()),
                );
            }
        }
        // Sampled recall audit, every `audit_every` slides: part of the
        // slide's work on purpose, so its cost shows up in the same
        // insert-time counter the bench harness measures overhead with.
        if self.audit_sample > 0 {
            self.since_audit += 1;
            if self.since_audit >= self.audit_every {
                self.since_audit = 0;
                self.run_recall_audit();
            }
        }
        // Insert time is the slide minus whatever expire_due just booked,
        // so the two phase counters partition the slide's wall time.
        let expiry_within = self.stats.expiry_nanos - expiry_before;
        self.stats.insert_nanos += (t0.elapsed().as_nanos() as u64).saturating_sub(expiry_within);
        let cost_after = self.slide_cost_totals();
        SlideReport {
            seq,
            expired,
            window_len: self.win.len(),
            cost: CostReport {
                filter_dist_evals: cost_after.0 - cost_before.0,
                verify_dist_evals: 0,
                hops: cost_after.1 - cost_before.1,
            },
        }
    }

    /// Lifetime `(dist_evals, hops)` of all slide-time phases (insert,
    /// expiry, audit); a slide's own cost is the delta across `ingest`.
    fn slide_cost_totals(&self) -> (u64, u64) {
        (
            self.stats.insert_dist_evals
                + self.stats.expiry_dist_evals
                + self.stats.audit_dist_evals,
            self.stats.insert_hops + self.stats.expiry_hops + self.stats.audit_hops,
        )
    }

    /// One sampled discovery-recall audit: pick `audit_sample` residents
    /// by a deterministic stride (keyed off the audit counter, so
    /// successive audits rotate through the window without a clock or an
    /// RNG), brute-force their true in-range neighbor count capped at
    /// `k`, re-run the backend's discovery read-only, and accumulate
    /// hits/expected into the lifetime stats. Because discovery returns
    /// certified subsets, hits ≤ expected always — the estimate is a
    /// true recall, not a similarity.
    fn run_recall_audit(&mut self) {
        let len = self.win.len();
        let (r, k) = (self.params.r, self.params.k);
        if len < 2 || k == 0 {
            return;
        }
        let sample = self.audit_sample.min(len);
        let stride = (len / sample).max(1);
        let start = (self.stats.recall_audits as usize).wrapping_mul(7919) % len;
        for i in 0..sample {
            let pos = (start + i * stride) % len;
            let (seq, expected) = {
                let view = WindowView::new(&self.win, &self.space);
                let mut truth = 0usize;
                for other in 0..len {
                    if other == pos {
                        continue;
                    }
                    self.stats.audit_dist_evals += 1;
                    if view.dist(pos, other) <= r {
                        truth += 1;
                        if truth >= k {
                            break;
                        }
                    }
                }
                (view.seq_at(pos), truth)
            };
            let discovered = {
                let view = WindowView::new(&self.win, &self.space);
                self.index.audit_discover(&view, seq, r)
            };
            self.stats.recall_hits += discovered.len().min(expected) as u64;
            self.stats.recall_expected += expected as u64;
        }
        // Read-only re-discovery walked the backend; book it to the audit.
        let (d, h) = self.index.take_cost();
        self.stats.audit_dist_evals += d;
        self.stats.audit_hops += h;
        self.stats.recall_audits += 1;
    }

    /// The backend's structural health document (live/tombstone split,
    /// maintenance counters, degree histogram). All-zero with
    /// `exact = true` on the exhaustive backend.
    pub fn index_health(&self) -> IndexHealth {
        self.index.health()
    }

    /// Fault injection for degradation tests: drop all but `keep` links
    /// per vertex in the backend (no-op on the exhaustive backend).
    /// Discovery recall falls; outlier verdicts stay exact — the lazy
    /// repair never trusts the graph.
    #[doc(hidden)]
    pub fn inject_edge_loss(&mut self, keep: usize) {
        self.index.inject_edge_loss(keep);
    }

    /// Advances the clock without inserting, expiring due residents
    /// (useful for time-based windows when the stream goes quiet).
    ///
    /// # Panics
    /// Panics if `time` regresses.
    pub fn advance_to(&mut self, time: f64) -> Vec<u64> {
        self.win.advance_clock(time);
        self.expire_due(false)
    }

    fn expire_due(&mut self, incoming: bool) -> Vec<u64> {
        let t0 = std::time::Instant::now();
        let mut expired = Vec::new();
        while self.win.front_due(self.params.window, incoming) {
            let e = self.win.pop_front().expect("due implies non-empty");
            self.states.remove(&e.seq);
            {
                let view = WindowView::new(&self.win, &self.space);
                self.index.on_expire(&view, e.seq);
            }
            self.stats.expirations += 1;
            expired.push(e.seq);
        }
        if !expired.is_empty() {
            // Compaction and re-pruning triggered by expiry book here.
            let (d, h) = self.index.take_cost();
            self.stats.expiry_dist_evals += d;
            self.stats.expiry_hops += h;
        }
        self.stats.expiry_nanos += t0.elapsed().as_nanos() as u64;
        expired
    }

    /// Seqs of the current window's outliers, ascending. Exact for both
    /// backends: inexact candidates are repaired against the window before
    /// their verdict is trusted.
    pub fn outliers(&mut self) -> Vec<u64> {
        self.outliers_instrumented().0
    }

    /// The current window's outliers as the unified batch-vocabulary
    /// [`OutlierReport`] — the same shape [`dod_core::Engine::query`]
    /// returns, so the bench harness, examples and tests compare batch
    /// and stream answers through one type.
    ///
    /// Ids are **window positions** (`0..len()`, oldest first), i.e. ids
    /// into [`window_view`](StreamDetector::window_view) — directly
    /// comparable to a batch detector run over that view. Map a position
    /// back to its seq with [`WindowView::seq_at`]. The filter/verify
    /// accounting follows the batch report's vocabulary: `candidates` are
    /// residents that needed an exact repair, `false_positives` the
    /// repairs that came back inlier, `decided_in_filter` outliers decided
    /// from already-exact maintained knowledge.
    pub fn report(&mut self) -> OutlierReport {
        let t = Instant::now();
        let repairs_before = self.stats.query_dist_evals;
        let (seqs, counters) = self.outliers_instrumented();
        let total = t.elapsed().as_secs_f64();
        let front = self.win.front_seq();
        let verify_secs = counters.repair_secs.min(total);
        OutlierReport {
            outliers: seqs.into_iter().map(|s| (s - front) as u32).collect(),
            candidates: counters.candidates,
            false_positives: counters.false_positives,
            decided_in_filter: counters.decided_in_filter,
            filter_secs: (total - verify_secs).max(0.0),
            verify_secs,
            cost: CostReport {
                // Query-time filtering answers from maintained counts —
                // zero distances; repairs are the verification work.
                filter_dist_evals: 0,
                verify_dist_evals: self.stats.query_dist_evals - repairs_before,
                hops: 0,
            },
        }
    }

    /// Shared implementation of [`outliers`](StreamDetector::outliers) and
    /// [`report`](StreamDetector::report): the answer plus the
    /// filter/verify accounting of how it was reached.
    fn outliers_instrumented(&mut self) -> (Vec<u64>, QueryCounters) {
        let k = self.params.k;
        let mut out = Vec::new();
        let mut counters = QueryCounters::default();
        if k == 0 {
            return (out, counters);
        }
        let front = self.win.front_seq();
        let next = self.win.next_seq();
        let trusted = self.index.is_exact();
        let (win, space, states, stats) =
            (&self.win, &self.space, &mut self.states, &mut self.stats);
        let r = self.params.r;
        let mut promoted = Vec::new();
        for (&seq, st) in states.iter_mut() {
            if st.live_count(front) >= k {
                continue; // certified inlier (counts are lower bounds)
            }
            if !trusted && !st.is_exact(next) {
                // Below k on a lower bound only: a candidate, verified by
                // an exact (incremental) repair against the window.
                counters.candidates += 1;
                let t = Instant::now();
                repair(win, space, seq, st, r, stats);
                counters.repair_secs += t.elapsed().as_secs_f64();
                if st.succ_count() >= k {
                    promoted.push(seq);
                    counters.false_positives += 1;
                    continue;
                }
                if st.live_count(front) >= k {
                    counters.false_positives += 1;
                    continue;
                }
            } else {
                // The maintained knowledge is already exact: decided
                // without verification, like the batch K' shortcut.
                counters.decided_in_filter += 1;
            }
            out.push(seq);
        }
        for seq in promoted {
            self.states.remove(&seq);
            self.stats.safe_promotions += 1;
        }
        self.stats.query_candidates += counters.candidates as u64;
        self.stats.query_false_positives += counters.false_positives as u64;
        self.stats.query_decided_in_filter += counters.decided_in_filter as u64;
        out.sort_unstable();
        (out, counters)
    }

    /// Recomputes the outlier set from scratch over the current window
    /// through the batch verification engine
    /// ([`dod_core::verify::ExactCounter`]) — an independent code path the
    /// incremental result can be cross-checked against.
    pub fn audit(&self) -> Vec<u64> {
        let (r, k) = (self.params.r, self.params.k);
        let mut out = Vec::new();
        if k == 0 {
            return out;
        }
        let view = WindowView::new(&self.win, &self.space);
        let counter = ExactCounter::build(VerifyStrategy::Linear, &view, 0);
        for pos in 0..view.len() {
            if counter.count(&view, pos, r, k) < k {
                out.push(view.seq_at(pos));
            }
        }
        out
    }

    /// Number of points currently in the window.
    pub fn len(&self) -> usize {
        self.win.len()
    }

    /// `true` when the window holds no points.
    pub fn is_empty(&self) -> bool {
        self.win.is_empty()
    }

    /// The window contents as a read-only [`dod_metrics::Dataset`] view.
    pub fn window_view(&self) -> WindowView<'_, S> {
        WindowView::new(&self.win, &self.space)
    }

    /// Seqs currently in the window, ascending.
    pub fn window_seqs(&self) -> Vec<u64> {
        self.win.iter().map(|e| e.seq).collect()
    }

    /// The live point with seq `seq`, if any.
    pub fn get(&self, seq: u64) -> Option<&S::Point> {
        self.win.point(seq)
    }

    /// Latest observed timestamp (−∞ before the first insertion).
    pub fn now(&self) -> f64 {
        self.win.now()
    }

    /// The query parameters.
    pub fn params(&self) -> &StreamParams {
        &self.params
    }

    /// The backend's display name.
    pub fn backend_name(&self) -> &'static str {
        self.index.name()
    }

    /// Residents still tracked (live and not yet safe).
    pub fn tracked(&self) -> usize {
        self.states.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Approximate heap bytes of engine state (neighbor lists + backend).
    pub fn size_bytes(&self) -> usize {
        self.states.values().map(|s| s.size_bytes()).sum::<usize>()
            + self.states.len()
                * (std::mem::size_of::<u64>() + std::mem::size_of::<NeighborState>())
            + self.index.size_bytes()
    }
}

/// Makes `st`'s knowledge exact for the current window: a full window scan
/// the first time, a scan of only the arrivals since `exact_upto`
/// afterwards.
fn repair<S: Space>(
    win: &WindowStore<S::Point>,
    space: &S,
    seq: u64,
    st: &mut NeighborState,
    r: f64,
    stats: &mut StreamStats,
) {
    let own = win.point(seq).expect("tracked seq is live");
    if !st.pred_exact {
        let mut pred = Vec::new();
        let mut succ = Vec::new();
        for e in win.iter() {
            if e.seq == seq {
                continue;
            }
            stats.query_dist_evals += 1;
            if space.dist(own, &e.point) <= r {
                if e.seq < seq {
                    pred.push(e.seq);
                } else {
                    succ.push(e.seq);
                }
            }
        }
        st.set_exact(pred, succ, win.next_seq());
        stats.full_repairs += 1;
    } else {
        let from = st.exact_upto.max(win.front_seq());
        for e in win.iter_from(from) {
            stats.query_dist_evals += 1;
            if space.dist(own, &e.point) <= r {
                st.add_succ(e.seq);
            }
        }
        st.exact_upto = win.next_seq();
        stats.incremental_repairs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VectorSpace;
    use dod_metrics::L2;

    fn det(r: f64, k: usize, w: usize, backend: Backend) -> StreamDetector<VectorSpace<L2>> {
        StreamDetector::try_with_backend(
            VectorSpace::new(L2, 1),
            StreamParams::count(r, k, w),
            backend,
        )
        .expect("valid params")
    }

    fn both() -> [Backend; 2] {
        [Backend::Exhaustive, Backend::Graph(GraphParams::default())]
    }

    #[test]
    fn isolated_point_is_flagged_and_expires_away() {
        for backend in both() {
            let mut d = det(1.0, 2, 4, backend);
            for x in [0.0f32, 0.3, 0.6, 50.0] {
                d.insert(vec![x]);
            }
            assert_eq!(d.outliers(), vec![3], "{}", d.backend_name());
            // Four more clustered points push the outlier out of the window.
            for x in [0.1f32, 0.2, 0.4, 0.5] {
                d.insert(vec![x]);
            }
            assert!(!d.outliers().contains(&3));
            assert_eq!(d.outliers(), d.audit(), "{}", d.backend_name());
        }
    }

    #[test]
    fn expiry_can_create_outliers() {
        for backend in both() {
            // Window of 3: [0.0, 0.1, 9.0] — 9.0 alone is an outlier; when
            // 0.0 and 0.1 expire, the window [9.0, 20.0, 30.0] makes
            // everything an outlier.
            let mut d = det(0.5, 1, 3, backend);
            for x in [0.0f32, 0.1, 9.0, 20.0, 30.0] {
                d.insert(vec![x]);
            }
            assert_eq!(d.outliers(), vec![2, 3, 4], "{}", d.backend_name());
            assert_eq!(d.outliers(), d.audit());
        }
    }

    #[test]
    fn repeated_queries_are_stable_and_cheap() {
        for backend in both() {
            let mut d = det(0.5, 2, 16, backend);
            for i in 0..40 {
                d.insert(vec![(i % 5) as f32 * 0.2]);
            }
            let a = d.outliers();
            let before = d.stats();
            let b = d.outliers();
            let after = d.stats();
            assert_eq!(a, b);
            // The second query repaired nothing new.
            assert_eq!(before.full_repairs, after.full_repairs);
        }
    }

    #[test]
    fn phase_timing_counters_accumulate_and_absorb() {
        let mut d = det(0.5, 2, 4, Backend::Exhaustive);
        for i in 0..12 {
            d.insert(vec![i as f32 * 0.1]);
        }
        let s = d.stats();
        assert!(s.insert_nanos > 0, "inserts took measurable time");
        assert!(
            s.expirations > 0,
            "window of 4 after 12 inserts must have expired"
        );
        let mut total = StreamStats::default();
        total.absorb(&s);
        total.absorb(&s);
        assert_eq!(total.insert_nanos, 2 * s.insert_nanos);
        assert_eq!(total.expiry_nanos, 2 * s.expiry_nanos);
    }

    #[test]
    fn safe_inliers_stop_being_tracked() {
        let mut d = det(1.0, 2, 8, Backend::Exhaustive);
        for _ in 0..8 {
            d.insert(vec![0.0]);
        }
        // Every early point has ≥2 succeeding duplicates: safe.
        assert!(d.stats().safe_promotions >= 4);
        assert!(d.tracked() < 8);
        assert!(d.outliers().is_empty());
    }

    #[test]
    fn k_zero_reports_nothing() {
        for backend in both() {
            let mut d = det(1.0, 0, 4, backend);
            for x in [0.0f32, 100.0, 200.0] {
                d.insert(vec![x]);
            }
            assert!(d.outliers().is_empty());
            assert!(d.audit().is_empty());
            assert_eq!(d.tracked(), 0);
        }
    }

    #[test]
    fn timed_window_expires_by_horizon() {
        let space = VectorSpace::new(L2, 1);
        let mut d =
            StreamDetector::try_new(space, StreamParams::timed(1.0, 1, 10.0)).expect("valid");
        d.insert_at(vec![0.0], 0.0);
        d.insert_at(vec![0.2], 5.0);
        d.insert_at(vec![0.3], 9.0);
        assert_eq!(d.len(), 3);
        let expired = d.advance_to(12.0);
        assert_eq!(expired, vec![0]); // time 0.0 <= 12 - 10
        assert_eq!(d.window_seqs(), vec![1, 2]);
        let expired = d.advance_to(30.0);
        assert_eq!(expired, vec![1, 2]);
        assert!(d.is_empty());
        assert!(d.outliers().is_empty());
    }

    #[test]
    fn reports_describe_the_slide() {
        let mut d = det(1.0, 1, 2, Backend::Exhaustive);
        let r0 = d.insert(vec![0.0]);
        assert_eq!((r0.seq, r0.window_len), (0, 1));
        assert!(r0.expired.is_empty());
        d.insert(vec![1.0]);
        let r2 = d.insert(vec![2.0]);
        assert_eq!(r2.expired, vec![0]);
        assert_eq!(r2.window_len, 2);
    }

    #[test]
    fn invalid_params_surface_as_typed_errors() {
        let bad_r =
            StreamDetector::try_new(VectorSpace::new(L2, 1), StreamParams::count(f64::NAN, 1, 4));
        assert!(matches!(bad_r, Err(DodError::InvalidRadius { .. })));
        let bad_w =
            StreamDetector::try_new(VectorSpace::new(L2, 1), StreamParams::count(1.0, 1, 0));
        assert!(matches!(bad_w, Err(DodError::InvalidWindow { .. })));
    }

    #[test]
    fn ghosts_feed_counts_but_are_never_reported() {
        for backend in both() {
            let name = format!("{backend:?}");
            // r = 1, k = 2, window 8. Two owned points at 0.0 and 0.3 plus
            // one far owned point; without ghosts both near points have
            // only one neighbor each and all three are outliers.
            let mut d = det(1.0, 2, 8, backend);
            d.insert_at(vec![0.0], 0.0);
            d.insert_at(vec![0.3], 1.0);
            d.insert_at(vec![50.0], 2.0);
            assert_eq!(d.outliers(), vec![0, 1, 2], "{name}");
            // A ghost at 0.5 gives both near points their second neighbor,
            // but is itself never reported — even though its own ghost
            // count (2 neighbors) would make no difference here, a ghost
            // with < k neighbors must stay unreported too.
            let g = d.insert_ghost_at(vec![0.5], 3.0);
            assert_eq!(g.seq, 3);
            assert_eq!(d.outliers(), vec![2], "{name}");
            assert_eq!(d.stats().ghost_inserts, 1);
            // audit() counts every resident, ghosts included: the ghost is
            // an inlier here, the far point is not.
            assert_eq!(d.audit(), vec![2], "{name}");
            // Ghosts expire like any resident: push the window forward.
            for i in 0..8 {
                d.insert_at(vec![100.0 + i as f32 * 0.1], 4.0 + i as f64);
            }
            assert!(d.window_seqs().iter().all(|&s| s >= 4), "{name}");
        }
    }

    #[test]
    fn ghost_arrivals_promote_safe_inliers() {
        let mut d = det(1.0, 2, 16, Backend::Exhaustive);
        d.insert(vec![0.0]);
        let before = d.stats().safe_promotions;
        // Two succeeding ghosts within r promote seq 0 to a safe inlier.
        d.insert_ghost_at(vec![0.1], 1.0);
        d.insert_ghost_at(vec![0.2], 2.0);
        assert_eq!(d.stats().safe_promotions, before + 1);
        assert!(d.outliers().is_empty());
    }

    #[test]
    fn open_uses_the_batch_query_vocabulary() {
        let mut d = StreamDetector::open(
            VectorSpace::new(L2, 1),
            Query::new(1.0, 2).expect("valid query"),
            WindowSpec::Count(4),
            Backend::Exhaustive,
        )
        .expect("open");
        for x in [0.0f32, 0.3, 0.6, 50.0] {
            d.insert(vec![x]);
        }
        assert_eq!(d.outliers(), vec![3]);
        assert!(Query::new(-1.0, 2).is_err(), "bad radius dies at Query");
    }

    #[test]
    fn report_matches_a_batch_engine_over_the_window_view() {
        for backend in both() {
            let mut d = det(0.5, 2, 16, backend);
            let mut last = None;
            for i in 0..40 {
                let slide = d.insert(vec![(i % 7) as f32 * 0.3]);
                last = Some(slide);
            }
            let name = d.backend_name();
            let report = last
                .expect("slid")
                .into_outlier_report(&mut d)
                .expect("handle from the latest slide is fresh");
            // Same result shape, same answer as a batch engine over the
            // window snapshot.
            let view = d.window_view();
            let batch = dod_core::nested_loop::detect(&view, &dod_core::DodParams::new(0.5, 2), 0);
            assert_eq!(report.outliers, batch.outliers, "{name}");
            // Accounting obeys the batch invariant.
            assert_eq!(
                report.candidates,
                report.outliers.len() - report.decided_in_filter + report.false_positives,
                "{name}"
            );
        }
    }

    #[test]
    fn slide_cost_tracks_the_exhaustive_window_scan() {
        let mut d = det(0.5, 2, 4, Backend::Exhaustive);
        // First insertion sees an empty window: nothing to scan.
        let r0 = d.insert(vec![0.0]);
        assert_eq!(r0.cost, CostReport::default());
        // Each later insertion scans every other resident exactly once.
        let r1 = d.insert(vec![0.1]);
        assert_eq!(r1.cost.filter_dist_evals, 1);
        d.insert(vec![0.2]);
        d.insert(vec![0.3]);
        let r4 = d.insert(vec![0.4]); // window full: expire 1, scan 3
        assert_eq!(r4.cost.filter_dist_evals, 3);
        assert_eq!(r4.cost.hops, 0, "structureless backend never hops");
        assert_eq!(r4.cost.verify_dist_evals, 0, "slides never verify");
        let s = d.stats();
        assert_eq!(s.insert_dist_evals, 1 + 2 + 3 + 3);
        // Exact counts are always trusted: queries repair nothing.
        let rep = d.report();
        assert_eq!(rep.cost, CostReport::default());
        assert_eq!(s.query_dist_evals, 0);
    }

    #[test]
    fn graph_backend_books_slide_and_query_cost() {
        let mut d = det(0.5, 2, 16, Backend::Graph(GraphParams::default()));
        let mut slide_dists = 0;
        let mut slide_hops = 0;
        for i in 0..40 {
            let s = d.insert(vec![(i % 7) as f32 * 0.3]);
            slide_dists += s.cost.filter_dist_evals;
            slide_hops += s.cost.hops;
        }
        assert!(slide_dists > 0, "graph discovery evaluated no distances?");
        assert!(slide_hops > 0, "graph discovery expanded no vertices?");
        let stats = d.stats();
        assert_eq!(
            slide_dists,
            stats.insert_dist_evals + stats.expiry_dist_evals + stats.audit_dist_evals,
            "per-slide deltas must sum to the lifetime phase counters"
        );
        let rep = d.report();
        // Inexact backend: whatever repairs ran are booked as verify cost,
        // and query effectiveness counters mirror the report.
        assert_eq!(rep.cost.verify_dist_evals, d.stats().query_dist_evals);
        assert_eq!(d.stats().query_candidates, rep.candidates as u64);
    }

    #[test]
    fn stale_slide_handles_are_rejected() {
        let mut d = det(0.5, 1, 4, Backend::Exhaustive);
        let stale = d.insert(vec![0.0]);
        d.insert(vec![10.0]); // the window has slid past `stale`
        let back = d.insert(vec![20.0]);
        assert!(stale.into_outlier_report(&mut d).is_err());
        assert!(back.into_outlier_report(&mut d).is_ok());
    }
}
