//! The [`StreamIndex`] abstraction: how a backend discovers the new
//! point's range neighbors, plus the exhaustive (always-exact) backend.
//!
//! The engine's invariant is deliberately weak so backends can trade
//! discovery cost against later repair work: `on_insert` must return a
//! *certified subset* of the new point's true in-window `r`-neighbors.
//! Complete backends ([`ExhaustiveIndex`]) make every maintained count
//! exact; incomplete ones (the graph backend) leave lower bounds that the
//! engine's lazy repair tops up before any outlier verdict is trusted.

use crate::space::Space;
use crate::window::WindowView;
use dod_metrics::Dataset;

/// A neighbor-discovery backend for the streaming engine.
pub trait StreamIndex<S: Space> {
    /// Called right after the point with sequence number `seq` entered the
    /// window. Returns the seqs of discovered live neighbors within `r`
    /// (excluding `seq` itself). The result must be a subset of the true
    /// neighbor set — and the complete set when [`is_exact`](Self::is_exact)
    /// returns `true`.
    fn on_insert(&mut self, view: &WindowView<'_, S>, seq: u64, r: f64) -> Vec<u64>;

    /// Called right after the entry with `seq` left the window (`view`
    /// already excludes it).
    fn on_expire(&mut self, view: &WindowView<'_, S>, seq: u64);

    /// Whether `on_insert` discovery is complete (counts need no
    /// verification).
    fn is_exact(&self) -> bool;

    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Approximate heap bytes held by the backend.
    fn size_bytes(&self) -> usize;
}

/// Exact incremental counter: discovers neighbors by scanning the whole
/// window once per insertion (`O(W)` distances per slide, zero per
/// expiry). The streaming analogue of DOLPHIN's candidate index with
/// retention probability 1 — counts are exact at all times, so outlier
/// queries never verify anything.
#[derive(Debug, Default)]
pub struct ExhaustiveIndex;

impl<S: Space> StreamIndex<S> for ExhaustiveIndex {
    fn on_insert(&mut self, view: &WindowView<'_, S>, seq: u64, r: f64) -> Vec<u64> {
        let mut found = Vec::new();
        if view.len() == 0 {
            return found;
        }
        let own = (seq - view.seq_at(0)) as usize;
        for pos in 0..view.len() {
            if pos != own && view.dist(own, pos) <= r {
                found.push(view.seq_at(pos));
            }
        }
        found
    }

    fn on_expire(&mut self, _view: &WindowView<'_, S>, _seq: u64) {}

    fn is_exact(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn size_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VectorSpace;
    use crate::window::WindowStore;
    use dod_metrics::L2;

    #[test]
    fn exhaustive_discovery_is_complete() {
        let space = VectorSpace::new(L2, 1);
        let mut win = WindowStore::new();
        for (i, x) in [0.0f32, 0.5, 3.0, 0.6].into_iter().enumerate() {
            win.push(vec![x], i as f64);
        }
        let view = WindowView::new(&win, &space);
        let mut idx = ExhaustiveIndex;
        // Point 3 (x = 0.6) has in-range neighbors 0 and 1 at r = 1.
        let found = StreamIndex::<VectorSpace<L2>>::on_insert(&mut idx, &view, 3, 1.0);
        assert_eq!(found, vec![0, 1]);
        assert!(StreamIndex::<VectorSpace<L2>>::is_exact(&idx));
    }
}
