//! The [`StreamIndex`] abstraction: how a backend discovers the new
//! point's range neighbors, plus the exhaustive (always-exact) backend.
//!
//! The engine's invariant is deliberately weak so backends can trade
//! discovery cost against later repair work: `on_insert` must return a
//! *certified subset* of the new point's true in-window `r`-neighbors.
//! Complete backends ([`ExhaustiveIndex`]) make every maintained count
//! exact; incomplete ones (the graph backend) leave lower bounds that the
//! engine's lazy repair tops up before any outlier verdict is trusted.

use crate::space::Space;
use crate::window::WindowView;
use dod_metrics::Dataset;

/// Number of degree-distribution buckets in [`IndexHealth::degree_hist`]:
/// the eight finite bounds of [`DEGREE_BUCKET_BOUNDS`] plus overflow.
pub const DEGREE_BUCKETS: usize = 9;

/// Upper bounds (inclusive) of the finite degree buckets. Vertices with
/// more links than the last bound land in the overflow bucket.
pub const DEGREE_BUCKET_BOUNDS: [usize; DEGREE_BUCKETS - 1] = [0, 2, 4, 8, 16, 32, 64, 128];

/// A backend's structural health document: how much of the index is
/// dead weight, how hard maintenance has worked, and how link degrees
/// are distributed. Exact backends report an all-zero document with
/// `exact = true` — they have no structure to degrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexHealth {
    /// Whether discovery is complete ([`StreamIndex::is_exact`]).
    pub exact: bool,
    /// Live (reportable) vertices currently indexed.
    pub live: u64,
    /// Tombstoned vertices awaiting compaction.
    pub tombstones: u64,
    /// Lifetime compaction passes.
    pub compactions: u64,
    /// Lifetime bridge edges added while compacting tombstones out.
    pub bridge_edges: u64,
    /// Lifetime adjacency prunes (over-full vertices trimmed back).
    pub prunes: u64,
    /// Vertex count per degree bucket (bounds in
    /// [`DEGREE_BUCKET_BOUNDS`], last slot = overflow), over live and
    /// tombstoned vertices alike — tombstones still route traffic.
    pub degree_hist: [u64; DEGREE_BUCKETS],
}

impl Default for IndexHealth {
    fn default() -> Self {
        IndexHealth {
            exact: true,
            live: 0,
            tombstones: 0,
            compactions: 0,
            bridge_edges: 0,
            prunes: 0,
            degree_hist: [0; DEGREE_BUCKETS],
        }
    }
}

impl IndexHealth {
    /// Fraction of indexed vertices that are tombstones (`0.0` for an
    /// empty or structureless index).
    pub fn tombstone_ratio(&self) -> f64 {
        let total = self.live + self.tombstones;
        if total == 0 {
            0.0
        } else {
            self.tombstones as f64 / total as f64
        }
    }

    /// Folds another backend's document into this one (the sharded
    /// engine sums per-shard documents). Exactness survives only if
    /// every merged backend is exact.
    pub fn absorb(&mut self, other: &IndexHealth) {
        let IndexHealth {
            exact,
            live,
            tombstones,
            compactions,
            bridge_edges,
            prunes,
            degree_hist,
        } = other;
        self.exact &= exact;
        self.live += live;
        self.tombstones += tombstones;
        self.compactions += compactions;
        self.bridge_edges += bridge_edges;
        self.prunes += prunes;
        for (mine, theirs) in self.degree_hist.iter_mut().zip(degree_hist) {
            *mine += theirs;
        }
    }
}

/// A neighbor-discovery backend for the streaming engine.
pub trait StreamIndex<S: Space> {
    /// Called right after the point with sequence number `seq` entered the
    /// window. Returns the seqs of discovered live neighbors within `r`
    /// (excluding `seq` itself). The result must be a subset of the true
    /// neighbor set — and the complete set when [`is_exact`](Self::is_exact)
    /// returns `true`.
    fn on_insert(&mut self, view: &WindowView<'_, S>, seq: u64, r: f64) -> Vec<u64>;

    /// Called right after the entry with `seq` left the window (`view`
    /// already excludes it).
    fn on_expire(&mut self, view: &WindowView<'_, S>, seq: u64);

    /// Whether `on_insert` discovery is complete (counts need no
    /// verification).
    fn is_exact(&self) -> bool;

    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Approximate heap bytes held by the backend.
    fn size_bytes(&self) -> usize;

    /// The backend's structural health document. The default (an exact,
    /// structureless index) suits backends with nothing to degrade.
    fn health(&self) -> IndexHealth {
        IndexHealth {
            exact: self.is_exact(),
            ..IndexHealth::default()
        }
    }

    /// Re-runs neighbor discovery for an *existing* resident, read-only
    /// (no linking, no structural change): what would this backend find
    /// for `seq` right now? The recall auditor compares the result
    /// against a brute-force count. The default is the brute-force scan
    /// itself, so exact backends audit at recall 1.0 by construction.
    fn audit_discover(&mut self, view: &WindowView<'_, S>, seq: u64, r: f64) -> Vec<u64> {
        let mut found = Vec::new();
        if view.len() == 0 {
            return found;
        }
        let Some(own) = seq.checked_sub(view.seq_at(0)).map(|o| o as usize) else {
            return found;
        };
        if own >= view.len() {
            return found;
        }
        for pos in 0..view.len() {
            if pos != own && view.dist(own, pos) <= r {
                found.push(view.seq_at(pos));
            }
        }
        found
    }

    /// Fault injection for degradation tests: throw away all but the
    /// first `keep` links of every vertex (no-op on structureless
    /// backends). Discovery recall should fall; exactness must not.
    fn inject_edge_loss(&mut self, _keep: usize) {}

    /// Drains the backend's `(distance evaluations, graph hops)` tally
    /// accumulated since the last drain. The engine drains once per
    /// phase (insert, expiry, audit) to attribute backend work to cost
    /// counters; backends that do not tally return `(0, 0)`.
    fn take_cost(&mut self) -> (u64, u64) {
        (0, 0)
    }
}

/// Exact incremental counter: discovers neighbors by scanning the whole
/// window once per insertion (`O(W)` distances per slide, zero per
/// expiry). The streaming analogue of DOLPHIN's candidate index with
/// retention probability 1 — counts are exact at all times, so outlier
/// queries never verify anything.
#[derive(Debug, Default)]
pub struct ExhaustiveIndex {
    /// Distance evaluations since the last [`StreamIndex::take_cost`]
    /// drain (one full window scan per insertion).
    dist_evals: u64,
}

impl<S: Space> StreamIndex<S> for ExhaustiveIndex {
    fn on_insert(&mut self, view: &WindowView<'_, S>, seq: u64, r: f64) -> Vec<u64> {
        let mut found = Vec::new();
        if view.len() == 0 {
            return found;
        }
        let own = (seq - view.seq_at(0)) as usize;
        self.dist_evals += view.len().saturating_sub(1) as u64;
        for pos in 0..view.len() {
            if pos != own && view.dist(own, pos) <= r {
                found.push(view.seq_at(pos));
            }
        }
        found
    }

    fn on_expire(&mut self, _view: &WindowView<'_, S>, _seq: u64) {}

    fn is_exact(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn size_bytes(&self) -> usize {
        0
    }

    fn take_cost(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.dist_evals), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VectorSpace;
    use crate::window::WindowStore;
    use dod_metrics::L2;

    #[test]
    fn exhaustive_discovery_is_complete() {
        let space = VectorSpace::new(L2, 1);
        let mut win = WindowStore::new();
        for (i, x) in [0.0f32, 0.5, 3.0, 0.6].into_iter().enumerate() {
            win.push(vec![x], i as f64);
        }
        let view = WindowView::new(&win, &space);
        let mut idx = ExhaustiveIndex::default();
        // Point 3 (x = 0.6) has in-range neighbors 0 and 1 at r = 1.
        let found = StreamIndex::<VectorSpace<L2>>::on_insert(&mut idx, &view, 3, 1.0);
        assert_eq!(found, vec![0, 1]);
        assert!(StreamIndex::<VectorSpace<L2>>::is_exact(&idx));
        // One insertion over a 4-point window scans the 3 other residents.
        assert_eq!(StreamIndex::<VectorSpace<L2>>::take_cost(&mut idx), (3, 0));
        assert_eq!(StreamIndex::<VectorSpace<L2>>::take_cost(&mut idx), (0, 0));
    }
}
