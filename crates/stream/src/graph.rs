//! Graph-assisted neighbor discovery: a lazily-repaired proximity graph
//! over the window.
//!
//! New points are wired in NSW-style (beam search over the partial graph,
//! link to the nearest discoveries), then their in-range neighbors are
//! collected with [`dod_core::greedy_collect`] — the paper's Greedy
//! walk restricted to the query ball. Expired vertices are *tombstoned*:
//! they keep routing traffic (their point data is retained) but are never
//! reported as neighbors, and once tombstones reach a quarter of the live
//! window the arena is compacted — dead vertices are bridged out and their
//! slots recycled.
//!
//! Discovery through a graph walk is a certified *subset* of the true
//! neighbor set (Lemma 1 of the paper), so every count it maintains is a
//! lower bound; the engine's lazy exact repair restores exactness before
//! any outlier verdict is trusted. Graph quality therefore affects only
//! speed, never correctness.

use crate::index::{IndexHealth, StreamIndex, DEGREE_BUCKETS, DEGREE_BUCKET_BOUNDS};
use crate::seqmap::SeqMap;
use crate::space::Space;
use crate::window::WindowView;
use dod_core::{greedy_collect, DodError, TraversalBuffer};
use dod_graph::{GraphKind, ProximityGraph};
use dod_metrics::{Dataset, OrdF64};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tuning knobs for [`GraphIndex`].
#[derive(Debug, Clone)]
pub struct GraphParams {
    /// Links created per inserted point (NSW's `m`).
    pub m: usize,
    /// Beam width of the insertion-time search.
    pub ef: usize,
    /// Cap on neighbors reported per insertion (`0` = automatic:
    /// `max(2k, 16)`). Capping keeps dense-region insertions `O(k)` —
    /// undiscovered neighbors only shift work to the lazy repair.
    pub discover_cap: usize,
    /// Degree at which a vertex's adjacency is pruned back to the nearest
    /// `2·m` entries (bridging and inbound links grow lists over time).
    pub prune_above: usize,
    /// Slides between sampled discovery-recall audits (must be ≥ 1; see
    /// [`GraphParams::validate`]). Each audit re-discovers a few window
    /// residents read-only and compares against a brute-force count, so
    /// the exported recall estimate tracks graph degradation live.
    pub sample_rate: u64,
    /// Residents re-checked per audit (`0` disables auditing entirely).
    pub audit_sample: usize,
}

impl Default for GraphParams {
    fn default() -> Self {
        GraphParams {
            m: 12,
            ef: 32,
            discover_cap: 0,
            prune_above: 48,
            sample_rate: 1024,
            audit_sample: 4,
        }
    }
}

impl GraphParams {
    /// Validates the audit knobs: a zero `sample_rate` is a typed
    /// [`DodError::InvalidSpec`], not a silent clamp — disable auditing
    /// with `audit_sample = 0`, not by dividing by zero.
    pub fn validate(&self) -> Result<(), DodError> {
        if self.sample_rate == 0 {
            return Err(DodError::InvalidSpec {
                reason: "sample_rate must be >= 1 (set audit_sample = 0 to disable audits)"
                    .to_string(),
            });
        }
        Ok(())
    }
}

/// Arena slots as an id-addressed dataset (tombstones keep their data so
/// walks can route through them until compaction).
struct ArenaView<'a, S: Space> {
    space: &'a S,
    points: &'a [Option<S::Point>],
}

impl<S: Space> Dataset for ArenaView<'_, S> {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        // Freed slots are unreachable in a consistent graph, but a stale
        // link must degrade (infinitely far → never in range, never
        // expanded), not crash.
        match (self.points[i].as_ref(), self.points[j].as_ref()) {
            (Some(a), Some(b)) => self.space.dist(a, b),
            _ => f64::INFINITY,
        }
    }
}

/// The graph-assisted [`StreamIndex`] backend.
pub struct GraphIndex<S: Space> {
    params: GraphParams,
    discover_cap: usize,
    graph: ProximityGraph,
    /// Per-slot point data; `None` = recycled slot.
    points: Vec<Option<S::Point>>,
    seqs: Vec<u64>,
    alive: Vec<bool>,
    slot_of: SeqMap<u32>,
    free: Vec<u32>,
    dead: usize,
    live: usize,
    /// Recent insertion slots: beam-search entry points.
    recent: Vec<u32>,
    buf: TraversalBuffer,
    buf_cap: usize,
    scratch: Vec<u32>,
    /// Heap bytes of retained point payloads (live + tombstoned).
    payload_bytes: usize,
    /// Lifetime compaction passes.
    compactions: u64,
    /// Lifetime bridge edges added while compacting.
    bridge_edges: u64,
    /// Lifetime adjacency prunes.
    prunes: u64,
    /// Distance evaluations outside the shared walk buffer (beam search,
    /// pruning) since the last [`StreamIndex::take_cost`] drain.
    dist_evals: u64,
    /// Beam-search vertex expansions since the last drain (greedy-walk
    /// hops live in `buf` and are drained alongside).
    hops: u64,
}

impl<S: Space> GraphIndex<S> {
    /// A backend for queries with count threshold `k`.
    pub fn new(params: GraphParams, k: usize) -> Self {
        let discover_cap = if params.discover_cap > 0 {
            params.discover_cap
        } else {
            (2 * k).max(16)
        };
        GraphIndex {
            params,
            discover_cap,
            graph: ProximityGraph::new(0, GraphKind::KGraph),
            points: Vec::new(),
            seqs: Vec::new(),
            alive: Vec::new(),
            slot_of: SeqMap::default(),
            free: Vec::new(),
            dead: 0,
            live: 0,
            recent: Vec::new(),
            buf: TraversalBuffer::new(0),
            buf_cap: 0,
            scratch: Vec::new(),
            payload_bytes: 0,
            compactions: 0,
            bridge_edges: 0,
            prunes: 0,
            dist_evals: 0,
            hops: 0,
        }
    }

    /// Live vertices currently indexed.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Tombstoned vertices awaiting compaction.
    pub fn tombstone_count(&self) -> usize {
        self.dead
    }

    fn alloc(&mut self, space: &S, point: S::Point, seq: u64) -> u32 {
        self.payload_bytes += space.point_bytes(&point);
        let slot = if let Some(s) = self.free.pop() {
            self.points[s as usize] = Some(point);
            self.seqs[s as usize] = seq;
            self.alive[s as usize] = true;
            debug_assert!(self.graph.adj[s as usize].is_empty());
            s
        } else {
            self.points.push(Some(point));
            self.seqs.push(seq);
            self.alive.push(true);
            self.graph.adj.push(Vec::new());
            self.graph.pivot.push(false);
            (self.points.len() - 1) as u32
        };
        self.slot_of.insert(seq, slot);
        self.live += 1;
        if self.points.len() > self.buf_cap {
            self.buf_cap = (self.points.len() * 2).max(64);
            // Salvage the retiring buffer's undrained cost tally before
            // replacing it.
            let (d, h) = self.buf.take_cost();
            self.dist_evals += d;
            self.hops += h;
            self.buf = TraversalBuffer::new(self.buf_cap);
        }
        slot
    }

    /// Beam search for the nearest allocated slots to `q`; ascending
    /// `(dist, slot)`. Runs before `greedy_collect` in `on_insert`, so the
    /// two walks share one [`TraversalBuffer`] serially.
    fn beam_search(&mut self, space: &S, q: &S::Point, exclude: u32) -> Vec<(f64, u32)> {
        let ef = self.params.ef.max(self.params.m).max(1);
        self.buf.begin();
        self.buf.mark(exclude);
        let mut candidates: BinaryHeap<(Reverse<OrdF64>, u32)> = BinaryHeap::new();
        let mut found: BinaryHeap<(OrdF64, u32)> = BinaryHeap::with_capacity(ef + 1);
        let mut starts: Vec<u32> = self
            .recent
            .iter()
            .copied()
            .filter(|&s| s != exclude && self.points[s as usize].is_some())
            .collect();
        if starts.is_empty() {
            // All recent entries expired: restart from any allocated slot.
            starts.extend(
                (0..self.points.len() as u32)
                    .find(|&s| s != exclude && self.points[s as usize].is_some()),
            );
        }
        for s in starts {
            if !self.buf.mark(s) {
                continue;
            }
            self.dist_evals += 1;
            let d = space.dist(
                q,
                self.points[s as usize].as_ref().expect("start allocated"),
            );
            candidates.push((Reverse(OrdF64(d)), s));
            found.push((OrdF64(d), s));
        }
        while let Some((Reverse(OrdF64(d)), v)) = candidates.pop() {
            self.hops += 1;
            if found.len() >= ef && d > found.peek().expect("non-empty").0 .0 {
                break;
            }
            for i in 0..self.graph.adj[v as usize].len() {
                let w = self.graph.adj[v as usize][i];
                if !self.buf.mark(w) {
                    continue;
                }
                let Some(p) = self.points[w as usize].as_ref() else {
                    continue;
                };
                self.dist_evals += 1;
                let dw = space.dist(q, p);
                if found.len() < ef || dw < found.peek().expect("non-empty").0 .0 {
                    candidates.push((Reverse(OrdF64(dw)), w));
                    found.push((OrdF64(dw), w));
                    if found.len() > ef {
                        found.pop();
                    }
                }
            }
        }
        let mut out: Vec<(f64, u32)> = found.into_iter().map(|(OrdF64(d), v)| (d, v)).collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// Keeps only the nearest `2·m` links of an over-full vertex, removing
    /// the backlinks of dropped edges so adjacency stays symmetric (a
    /// stale one-way link would keep a future tombstone reachable after
    /// its slot is recycled). Dropping links can only reduce discovery,
    /// never exactness.
    fn prune(&mut self, space: &S, slot: u32) {
        self.prunes += 1;
        let own = self.points[slot as usize]
            .clone()
            .expect("pruned slot allocated");
        let keep = (2 * self.params.m).max(1);
        let dist_evals = &mut self.dist_evals;
        let points = &self.points;
        let mut ranked: Vec<(OrdF64, u32)> = self.graph.adj[slot as usize]
            .iter()
            .map(|&w| {
                let d = points[w as usize].as_ref().map_or(f64::INFINITY, |p| {
                    *dist_evals += 1;
                    space.dist(&own, p)
                });
                (OrdF64(d), w)
            })
            .collect();
        ranked.sort_by(|a, b| a.0 .0.total_cmp(&b.0 .0).then(a.1.cmp(&b.1)));
        let dropped: Vec<u32> = ranked.iter().skip(keep).map(|&(_, w)| w).collect();
        ranked.truncate(keep);
        self.graph.adj[slot as usize] = ranked.into_iter().map(|(_, w)| w).collect();
        for w in dropped {
            self.graph.adj[w as usize].retain(|&x| x != slot);
        }
    }

    /// The discovery step shared by `on_insert` and `audit_discover`:
    /// the paper's greedy ball walk from `slot`, unioned with the
    /// in-range entries of the beam result `found`, filtered to live
    /// vertices and mapped to seqs (excluding `slot` itself).
    fn collect_in_range(&mut self, space: &S, slot: u32, r: f64, found: &[(f64, u32)]) -> Vec<u64> {
        let arena = ArenaView {
            space,
            points: &self.points,
        };
        let mut discovered = std::mem::take(&mut self.scratch);
        // Tombstones in range are collected by the walk too; widen the cap
        // by their count so they cannot crowd out live discoveries.
        let limit = self.discover_cap.saturating_add(self.dead);
        greedy_collect(
            &self.graph,
            &arena,
            slot as usize,
            r,
            limit,
            &mut self.buf,
            &mut discovered,
        );
        for &(d, s) in found {
            if d <= r {
                discovered.push(s);
            }
        }
        discovered.sort_unstable();
        discovered.dedup();
        let result: Vec<u64> = discovered
            .iter()
            .filter(|&&s| s != slot && self.alive[s as usize])
            .map(|&s| self.seqs[s as usize])
            .collect();
        discovered.clear();
        self.scratch = discovered;
        result
    }

    /// Removes every tombstone: bridge its neighbors (so routes survive),
    /// unlink it everywhere, recycle the slot.
    fn compact(&mut self, space: &S) {
        self.compactions += 1;
        for s in 0..self.points.len() {
            if self.points[s].is_none() || self.alive[s] {
                continue;
            }
            let nbrs = std::mem::take(&mut self.graph.adj[s]);
            let anchors: Vec<u32> = nbrs
                .iter()
                .copied()
                .filter(|&w| self.points[w as usize].is_some())
                .collect();
            for pair in anchors.windows(2) {
                self.graph.add_undirected(pair[0], pair[1]);
                self.bridge_edges += 1;
            }
            for &w in &anchors {
                self.graph.adj[w as usize].retain(|&x| x != s as u32);
            }
            self.slot_of.remove(&self.seqs[s]);
            if let Some(p) = self.points[s].take() {
                self.payload_bytes -= space.point_bytes(&p);
            }
            self.free.push(s as u32);
        }
        self.dead = 0;
        self.recent
            .retain(|&s| self.points[s as usize].is_some() && self.alive[s as usize]);
        // Bridging fattens surviving vertices; trim the worst offenders.
        for s in 0..self.points.len() as u32 {
            if self.points[s as usize].is_some()
                && self.graph.adj[s as usize].len() > self.params.prune_above
            {
                self.prune(space, s);
            }
        }
    }
}

impl<S: Space> StreamIndex<S> for GraphIndex<S> {
    fn on_insert(&mut self, view: &WindowView<'_, S>, seq: u64, r: f64) -> Vec<u64> {
        let space = view.space();
        let q = view
            .point_of(seq)
            .expect("inserted point is in the window")
            .clone();
        let slot = self.alloc(space, q.clone(), seq);
        if self.live + self.dead == 1 {
            self.recent = vec![slot];
            return Vec::new();
        }

        // Wire the new vertex in: link to the nearest beam discoveries.
        let found = self.beam_search(space, &q, slot);
        for &(_, s) in found.iter().take(self.params.m) {
            self.graph.add_undirected(slot, s);
            if self.graph.adj[s as usize].len() > self.params.prune_above {
                self.prune(space, s);
            }
        }

        // Discover in-range neighbors with the paper's greedy ball walk,
        // then union in whatever the beam already certified.
        let result = self.collect_in_range(space, slot, r, &found);

        self.recent.push(slot);
        if self.recent.len() > 3 {
            self.recent.remove(0);
        }
        result
    }

    fn on_expire(&mut self, view: &WindowView<'_, S>, seq: u64) {
        let Some(&slot) = self.slot_of.get(&seq) else {
            return;
        };
        if self.alive[slot as usize] {
            self.alive[slot as usize] = false;
            self.live -= 1;
            self.dead += 1;
        }
        // Compact once tombstones reach a quarter of the live window.
        if self.dead >= (self.live / 4).max(8) {
            self.compact(view.space());
        }
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "graph"
    }

    fn size_bytes(&self) -> usize {
        self.graph.size_bytes()
            + self.payload_bytes
            + self.points.capacity() * std::mem::size_of::<Option<S::Point>>()
            + self.seqs.capacity() * std::mem::size_of::<u64>()
            + self.alive.capacity()
            + self.slot_of.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
            + self.buf_cap * std::mem::size_of::<u32>()
    }

    fn health(&self) -> IndexHealth {
        let mut degree_hist = [0u64; DEGREE_BUCKETS];
        for s in 0..self.points.len() {
            if self.points[s].is_none() {
                continue;
            }
            let deg = self.graph.adj[s].len();
            let bucket = DEGREE_BUCKET_BOUNDS
                .iter()
                .position(|&b| deg <= b)
                .unwrap_or(DEGREE_BUCKETS - 1);
            degree_hist[bucket] += 1;
        }
        IndexHealth {
            exact: false,
            live: self.live as u64,
            tombstones: self.dead as u64,
            compactions: self.compactions,
            bridge_edges: self.bridge_edges,
            prunes: self.prunes,
            degree_hist,
        }
    }

    fn audit_discover(&mut self, view: &WindowView<'_, S>, seq: u64, r: f64) -> Vec<u64> {
        let Some(&slot) = self.slot_of.get(&seq) else {
            return Vec::new();
        };
        let Some(q) = self.points[slot as usize].clone() else {
            return Vec::new();
        };
        // The same beam + greedy-walk discovery an insertion runs, but
        // read-only: no links are added, so a degraded graph stays
        // degraded and the audit measures what it would actually find.
        let space = view.space();
        let found = self.beam_search(space, &q, slot);
        self.collect_in_range(space, slot, r, &found)
    }

    fn inject_edge_loss(&mut self, keep: usize) {
        for s in 0..self.graph.adj.len() {
            let dropped: Vec<u32> = self.graph.adj[s].iter().skip(keep).copied().collect();
            self.graph.adj[s].truncate(keep);
            for w in dropped {
                self.graph.adj[w as usize].retain(|&x| x != s as u32);
            }
        }
    }

    fn take_cost(&mut self) -> (u64, u64) {
        // Greedy ball walks tally into the shared traversal buffer; beam
        // search and prunes tally into the index directly.
        let (d, h) = self.buf.take_cost();
        (
            d + std::mem::take(&mut self.dist_evals),
            h + std::mem::take(&mut self.hops),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VectorSpace;
    use crate::window::WindowStore;
    use dod_metrics::L2;

    fn feed(
        idx: &mut GraphIndex<VectorSpace<L2>>,
        win: &mut WindowStore<Vec<f32>>,
        space: &VectorSpace<L2>,
        xs: &[f32],
        r: f64,
    ) -> Vec<Vec<u64>> {
        let mut discoveries = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            let seq = win.push(vec![x], i as f64);
            let view = WindowView::new(win, space);
            discoveries.push(idx.on_insert(&view, seq, r));
        }
        discoveries
    }

    #[test]
    fn discovery_is_a_certified_neighbor_subset() {
        let space = VectorSpace::new(L2, 1);
        let mut win = WindowStore::new();
        let mut idx = GraphIndex::new(GraphParams::default(), 3);
        let xs: Vec<f32> = (0..40).map(|i| (i % 10) as f32 * 0.3).collect();
        let discoveries = feed(&mut idx, &mut win, &space, &xs, 0.5);
        for (i, found) in discoveries.iter().enumerate() {
            let own = win.point(i as u64).unwrap().clone();
            for &s in found {
                assert_ne!(s, i as u64);
                let d = space.dist(&own, win.point(s).unwrap());
                assert!(d <= 0.5, "reported non-neighbor: {i} ~ {s} at {d}");
            }
        }
        // Dense line: most points should discover someone.
        let hits = discoveries.iter().filter(|d| !d.is_empty()).count();
        assert!(hits > 30, "graph discovery too weak: {hits}/40");
    }

    #[test]
    fn tombstones_never_reported_and_compaction_recycles() {
        let space = VectorSpace::new(L2, 1);
        let mut win = WindowStore::new();
        let mut idx = GraphIndex::new(GraphParams::default(), 2);
        let xs: Vec<f32> = (0..30).map(|i| i as f32 * 0.1).collect();
        feed(&mut idx, &mut win, &space, &xs, 0.25);
        // Expire the oldest 20.
        for _ in 0..20 {
            let e = win.pop_front().unwrap();
            let view = WindowView::new(&win, &space);
            idx.on_expire(&view, e.seq);
        }
        assert_eq!(idx.live_count(), 10);
        // Threshold is max(live/4, 8) = 8, so at least one compaction ran.
        assert!(idx.tombstone_count() < 8, "compaction never triggered");
        // New discoveries must never name the expired seqs.
        // Live residents are x = 2.0..2.9 (seqs 20..30).
        let seq = win.push(vec![2.45], 40.0);
        let view = WindowView::new(&win, &space);
        let found = idx.on_insert(&view, seq, 0.3);
        assert!(!found.is_empty(), "live neighbors exist in range");
        assert!(
            found.iter().all(|&s| s >= 20),
            "tombstone reported: {found:?}"
        );
    }

    #[test]
    fn cost_tally_accumulates_and_drains() {
        let space = VectorSpace::new(L2, 1);
        let mut win = WindowStore::new();
        let mut idx = GraphIndex::new(GraphParams::default(), 3);
        let xs: Vec<f32> = (0..40).map(|i| (i % 10) as f32 * 0.3).collect();
        feed(&mut idx, &mut win, &space, &xs, 0.5);
        let (d, h) = StreamIndex::<VectorSpace<L2>>::take_cost(&mut idx);
        assert!(d > 0, "40 insertions evaluated no distances?");
        assert!(h > 0, "40 insertions expanded no vertices?");
        // Draining resets the tally.
        assert_eq!(StreamIndex::<VectorSpace<L2>>::take_cost(&mut idx), (0, 0));
    }

    #[test]
    fn single_point_window_discovers_nothing() {
        let space = VectorSpace::new(L2, 1);
        let mut win = WindowStore::new();
        let mut idx = GraphIndex::new(GraphParams::default(), 2);
        let seq = win.push(vec![0.0], 0.0);
        let view = WindowView::new(&win, &space);
        assert!(idx.on_insert(&view, seq, 10.0).is_empty());
        assert!(!StreamIndex::<VectorSpace<L2>>::is_exact(&idx));
    }
}
