//! Per-object neighbor bookkeeping: the state that makes slides cheap.
//!
//! For each tracked (non-safe) window resident we keep the *seqs* of its
//! known neighbors, split by arrival order:
//!
//! * `succ` — neighbors that arrived later. In a FIFO window they expire
//!   later too, so this list only grows while the object lives; once it
//!   reaches `k` the object is a **safe inlier** (DOLPHIN's observation)
//!   and all tracking stops forever.
//! * `pred` — neighbors that arrived earlier, ascending. They expire in
//!   exactly this order, so expiry is a pointer bump, never a scan.
//!
//! The live count is `|succ| + |live preds|`. Exact backends keep these
//! lists complete; the graph backend keeps certified subsets and records
//! how far its knowledge is exact (`exact_upto` / `pred_exact`) so the
//! engine's lazy repair can top the lists up by scanning only the window
//! suffix that arrived since.

/// Neighbor knowledge for one tracked object.
#[derive(Debug, Clone)]
pub(crate) struct NeighborState {
    /// Known succeeding neighbors, ascending seq, deduped.
    succ: Vec<u64>,
    /// Known preceding neighbors, ascending seq; `[pred_from..]` are live.
    pred: Vec<u64>,
    pred_from: usize,
    /// All arrivals with `seq < exact_upto` have been exactly accounted
    /// for in `succ` (always ≥ the object's own seq + 1).
    pub exact_upto: u64,
    /// Whether `pred` is the *complete* preceding neighbor list.
    pub pred_exact: bool,
}

impl NeighborState {
    /// State for a fresh object: `pred` holds the neighbors discovered at
    /// insertion (complete iff the backend is exhaustive).
    pub fn new(seq: u64, mut pred: Vec<u64>, pred_exact: bool) -> Self {
        pred.sort_unstable();
        pred.dedup();
        debug_assert!(pred.last().is_none_or(|&p| p < seq));
        NeighborState {
            succ: Vec::new(),
            pred,
            pred_from: 0,
            exact_upto: seq + 1,
            pred_exact,
        }
    }

    /// Records a succeeding neighbor; no-op if already known.
    pub fn add_succ(&mut self, seq: u64) {
        match self.succ.binary_search(&seq) {
            Ok(_) => {}
            Err(pos) => self.succ.insert(pos, seq),
        }
    }

    /// Number of known succeeding neighbors (all of them are live).
    pub fn succ_count(&self) -> usize {
        self.succ.len()
    }

    /// Drops expired preds and returns the current known neighbor count —
    /// a lower bound of the true count, exact when
    /// [`is_exact`](Self::is_exact) holds.
    pub fn live_count(&mut self, front_seq: u64) -> usize {
        while self.pred_from < self.pred.len() && self.pred[self.pred_from] < front_seq {
            self.pred_from += 1;
        }
        self.succ.len() + (self.pred.len() - self.pred_from)
    }

    /// Whether the maintained count equals the true window neighbor count.
    pub fn is_exact(&self, next_seq: u64) -> bool {
        self.pred_exact && self.exact_upto == next_seq
    }

    /// Replaces both lists with exactly-computed ones (full repair).
    pub fn set_exact(&mut self, pred: Vec<u64>, succ: Vec<u64>, next_seq: u64) {
        debug_assert!(pred.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(succ.windows(2).all(|w| w[0] < w[1]));
        self.pred = pred;
        self.pred_from = 0;
        self.succ = succ;
        self.pred_exact = true;
        self.exact_upto = next_seq;
    }

    /// Approximate heap bytes held by this state.
    pub fn size_bytes(&self) -> usize {
        (self.succ.capacity() + self.pred.capacity()) * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_split_pred_and_succ() {
        let mut st = NeighborState::new(10, vec![3, 7, 9], true);
        st.add_succ(12);
        st.add_succ(11);
        st.add_succ(12); // duplicate ignored
        assert_eq!(st.succ_count(), 2);
        assert_eq!(st.live_count(0), 5);
    }

    #[test]
    fn preds_expire_in_order() {
        let mut st = NeighborState::new(10, vec![3, 7, 9], true);
        assert_eq!(st.live_count(4), 2); // 3 expired
        assert_eq!(st.live_count(8), 1); // 7 expired
        assert_eq!(st.live_count(100), 0);
        // Expiry is monotone: re-asking with an older front changes nothing.
        assert_eq!(st.live_count(4), 0);
    }

    #[test]
    fn exactness_tracks_the_window_head() {
        let st = NeighborState::new(5, vec![1], true);
        assert!(st.is_exact(6));
        assert!(!st.is_exact(7)); // an arrival happened since
        let inexact = NeighborState::new(5, vec![1], false);
        assert!(!inexact.is_exact(6));
    }

    #[test]
    fn set_exact_overwrites_everything() {
        let mut st = NeighborState::new(5, vec![1], false);
        st.add_succ(6);
        st.set_exact(vec![2, 4], vec![6, 8], 9);
        assert!(st.is_exact(9));
        assert_eq!(st.live_count(0), 4);
    }

    #[test]
    fn new_sorts_and_dedups_discovered_preds() {
        let mut st = NeighborState::new(9, vec![7, 3, 7, 5], true);
        assert_eq!(st.live_count(0), 3);
        assert_eq!(st.live_count(4), 2);
    }
}
