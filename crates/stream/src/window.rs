//! The sliding window itself: seq-addressed FIFO storage plus a
//! [`Dataset`] view for batch cross-checks.
//!
//! Every ingested point gets a monotonically increasing sequence number.
//! Because timestamps are required to be non-decreasing, *arrival order is
//! expiry order* for both window kinds — the window is always a contiguous
//! seq interval `[front_seq, next_seq)`, which is what makes the engine's
//! preceding/succeeding neighbor split well-defined (a succeeding neighbor
//! can never expire before the object it was counted for).

use crate::space::Space;
use dod_core::DodError;
use dod_metrics::Dataset;
use std::collections::VecDeque;

/// What bounds the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSpec {
    /// Keep the most recent `w` points (a slide per insertion).
    Count(usize),
    /// Keep points with `time > now − horizon` (time units are the
    /// caller's; insertion timestamps must be non-decreasing).
    Time(f64),
}

impl WindowSpec {
    /// Validates the specification: a zero-capacity count window or a
    /// non-positive/non-finite horizon surfaces as
    /// [`DodError::InvalidWindow`].
    pub fn validate(&self) -> Result<(), DodError> {
        match *self {
            WindowSpec::Count(w) if w < 1 => Err(DodError::InvalidWindow {
                reason: "count window needs capacity >= 1".into(),
            }),
            WindowSpec::Time(h) if !(h > 0.0 && h.is_finite()) => Err(DodError::InvalidWindow {
                reason: format!("time window needs a positive finite horizon, got {h}"),
            }),
            _ => Ok(()),
        }
    }

    /// The expiry predicate: whether a window of `len` residents whose
    /// oldest carries `front_time`, observed at `now`, must drop that
    /// oldest resident. `incoming` counts a point about to be inserted
    /// (count windows expire *before* the insertion so capacity is never
    /// exceeded).
    ///
    /// This is **the** boundary every window in the workspace expires on
    /// — [`WindowStore`](crate::StreamDetector) and the sharded engine's
    /// global occupancy record both call it, so they cannot drift apart
    /// (sharding exactness depends on them agreeing on every slide).
    pub fn front_due(&self, front_time: f64, len: usize, now: f64, incoming: bool) -> bool {
        match *self {
            WindowSpec::Count(w) => len + usize::from(incoming) > w,
            WindowSpec::Time(h) => front_time <= now - h,
        }
    }

    /// Panics unless `time` is a valid next timestamp (non-NaN and not
    /// behind `now`) — the shared non-decreasing-clock contract of every
    /// streaming clock in the workspace.
    pub fn assert_clock_advance(now: f64, time: f64) {
        assert!(
            !time.is_nan() && time >= now,
            "stream time must be non-decreasing (got {time}, now {now})"
        );
    }
}

/// One window resident.
pub(crate) struct Entry<P> {
    pub seq: u64,
    pub time: f64,
    pub point: P,
}

/// FIFO storage for the current window contents, addressed by seq.
pub(crate) struct WindowStore<P> {
    entries: VecDeque<Entry<P>>,
    next_seq: u64,
    now: f64,
}

impl<P> WindowStore<P> {
    pub fn new() -> Self {
        WindowStore {
            entries: VecDeque::new(),
            next_seq: 0,
            now: f64::NEG_INFINITY,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Seq the next insertion will receive; the window is `[front_seq,
    /// next_seq)`.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Oldest live seq (== `next_seq` for an empty window).
    pub fn front_seq(&self) -> u64 {
        self.entries.front().map_or(self.next_seq, |e| e.seq)
    }

    /// Latest timestamp observed.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock without inserting.
    ///
    /// # Panics
    /// Panics if `time` is NaN or behind the latest observed timestamp.
    pub fn advance_clock(&mut self, time: f64) {
        WindowSpec::assert_clock_advance(self.now, time);
        self.now = time;
    }

    /// Appends a point at `time`, returning its seq.
    ///
    /// # Panics
    /// Panics if `time` regresses (see [`advance_clock`](Self::advance_clock)).
    pub fn push(&mut self, point: P, time: f64) -> u64 {
        self.advance_clock(time);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(Entry { seq, time, point });
        seq
    }

    /// Removes and returns the oldest resident.
    pub fn pop_front(&mut self) -> Option<Entry<P>> {
        self.entries.pop_front()
    }

    /// `true` when the oldest resident is due for expiry under `spec`
    /// (the shared [`WindowSpec::front_due`] predicate).
    pub fn front_due(&self, spec: WindowSpec, incoming: bool) -> bool {
        let Some(front) = self.entries.front() else {
            return false;
        };
        spec.front_due(front.time, self.len(), self.now, incoming)
    }

    pub fn get(&self, seq: u64) -> Option<&Entry<P>> {
        let front = self.entries.front()?.seq;
        if seq < front {
            return None;
        }
        self.entries.get((seq - front) as usize)
    }

    pub fn point(&self, seq: u64) -> Option<&P> {
        self.get(seq).map(|e| &e.point)
    }

    pub fn iter(&self) -> impl Iterator<Item = &Entry<P>> {
        self.entries.iter()
    }

    /// Residents with `seq >= from`, in seq order (the suffix the lazy
    /// repair scans).
    pub fn iter_from(&self, from: u64) -> impl Iterator<Item = &Entry<P>> {
        let front = self.front_seq();
        let skip = from.saturating_sub(front) as usize;
        self.entries.iter().skip(skip)
    }
}

/// The current window contents as an id-addressed [`Dataset`]: position
/// `i` is the `i`-th oldest resident.
///
/// This is the bridge back to the batch world — the engine's
/// [`audit`](crate::StreamDetector::audit) and the exactness property
/// tests run the batch detectors over this view and compare seq-mapped
/// results.
pub struct WindowView<'a, S: Space> {
    win: &'a WindowStore<S::Point>,
    space: &'a S,
}

impl<'a, S: Space> WindowView<'a, S> {
    pub(crate) fn new(win: &'a WindowStore<S::Point>, space: &'a S) -> Self {
        WindowView { win, space }
    }

    /// Seq of the resident at view position `pos`.
    ///
    /// # Panics
    /// Panics if `pos` is out of bounds.
    pub fn seq_at(&self, pos: usize) -> u64 {
        self.win.front_seq() + pos as u64
    }

    /// The point at view position `pos`.
    ///
    /// # Panics
    /// Panics if `pos` is out of bounds.
    pub fn point_at(&self, pos: usize) -> &S::Point {
        &self
            .win
            .get(self.seq_at(pos))
            .expect("position in bounds")
            .point
    }

    /// The live point with sequence number `seq`, if still in the window.
    pub fn point_of(&self, seq: u64) -> Option<&S::Point> {
        self.win.point(seq)
    }

    /// The metric space distances are measured in.
    pub fn space(&self) -> &S {
        self.space
    }
}

impl<S: Space> Dataset for WindowView<'_, S> {
    fn len(&self) -> usize {
        self.win.len()
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.space.dist(self.point_at(i), self.point_at(j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VectorSpace;
    use dod_metrics::L2;

    fn store123() -> WindowStore<Vec<f32>> {
        let mut w = WindowStore::new();
        w.push(vec![1.0], 0.0);
        w.push(vec![2.0], 1.0);
        w.push(vec![3.0], 2.0);
        w
    }

    #[test]
    fn seqs_are_contiguous_and_fifo() {
        let mut w = store123();
        assert_eq!((w.front_seq(), w.next_seq()), (0, 3));
        assert_eq!(w.pop_front().unwrap().seq, 0);
        assert_eq!(w.front_seq(), 1);
        assert!(w.get(0).is_none());
        assert_eq!(w.get(2).unwrap().point, vec![3.0]);
    }

    #[test]
    fn count_due_includes_the_incoming_point() {
        let w = store123();
        assert!(!w.front_due(WindowSpec::Count(3), false));
        assert!(w.front_due(WindowSpec::Count(3), true));
        assert!(w.front_due(WindowSpec::Count(2), false));
    }

    #[test]
    fn time_due_uses_the_horizon() {
        let mut w = store123();
        assert!(!w.front_due(WindowSpec::Time(5.0), false));
        w.advance_clock(5.5);
        // front.time = 0.0 <= 5.5 - 5.0.
        assert!(w.front_due(WindowSpec::Time(5.0), false));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_regression_is_rejected() {
        let mut w = store123();
        w.push(vec![4.0], 1.5);
    }

    #[test]
    fn iter_from_yields_the_suffix() {
        let w = store123();
        let seqs: Vec<u64> = w.iter_from(1).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(w.iter_from(0).count(), 3);
        assert_eq!(w.iter_from(7).count(), 0);
    }

    #[test]
    fn view_is_a_dataset_over_live_points() {
        let w = store123();
        let space = VectorSpace::new(L2, 1);
        let v = WindowView::new(&w, &space);
        assert_eq!(v.len(), 3);
        assert_eq!(v.dist(0, 2), 2.0);
        assert_eq!(v.dist(1, 1), 0.0);
        assert_eq!(v.seq_at(2), 2);
    }

    #[test]
    fn spec_validation() {
        assert!(WindowSpec::Count(1).validate().is_ok());
        assert!(WindowSpec::Time(0.5).validate().is_ok());
        for bad in [
            WindowSpec::Count(0),
            WindowSpec::Time(0.0),
            WindowSpec::Time(f64::NAN),
            WindowSpec::Time(f64::INFINITY),
        ] {
            assert!(
                matches!(bad.validate(), Err(DodError::InvalidWindow { .. })),
                "{bad:?} accepted"
            );
        }
    }
}
