//! [`SeqMap`] — a `HashMap` keyed by sequence numbers with a
//! multiplicative hasher.
//!
//! The hot loop of every slide probes the per-resident state map once
//! per discovered neighbor (often ~the whole cluster), and the default
//! SipHash costs more than the probe itself for a `u64` key. Seqs are
//! dense counters with no adversary behind them, so a single
//! multiply-and-rotate (the Fibonacci/FxHash construction) gives full
//! avalanche on the high bits at a fraction of the cost.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` over sequence-number keys using [`SeqHasher`].
pub(crate) type SeqMap<V> = HashMap<u64, V, BuildHasherDefault<SeqHasher>>;

/// Multiplicative hasher for integer keys (Fibonacci hashing).
#[derive(Default)]
pub(crate) struct SeqHasher(u64);

impl Hasher for SeqHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only integer keys reach this hasher in practice; byte slices
        // (never used by SeqMap) still hash correctly, chunk by chunk.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // Golden-ratio multiplier; the rotate spreads entropy back into
        // the low bits the table index is taken from.
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(26);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_map() {
        let mut m: SeqMap<&'static str> = SeqMap::default();
        for i in 0..1000u64 {
            m.insert(i, "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&557));
        m.remove(&557);
        assert!(!m.contains_key(&557));
    }

    #[test]
    fn sequential_keys_spread() {
        // Dense counters must not collide in the low bits the table
        // indexes by: check the hashes of 0..256 are distinct.
        let hashes: std::collections::HashSet<u64> = (0..256u64)
            .map(|v| {
                let mut h = SeqHasher::default();
                h.write_u64(v);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 256);
    }
}
