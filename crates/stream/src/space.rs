//! Point-level metric spaces for streaming ingestion.
//!
//! The batch crates address objects through [`dod_metrics::Dataset`] — a
//! *finite, fixed* id-addressed set. A stream has no fixed set: points
//! arrive forever and the engine must measure a fresh point against window
//! residents before any dataset exists. [`Space`] is the point-level
//! counterpart: it owns nothing, it only knows how to compare two owned
//! points (and to normalize one on ingestion, which is how the angular
//! metric's unit-length preprocessing carries over).

use dod_metrics::{edit_distance, VectorMetric};

/// A metric over owned points, used by the streaming engine to compare an
/// incoming point against window residents.
///
/// `dist` must satisfy the metric axioms, exactly like
/// [`dod_metrics::Dataset::dist`]. `Sync` (on both the space and its
/// points) lets window snapshots implement [`dod_metrics::Dataset`] so the
/// batch algorithms can run on them for cross-checking; `Send` lets a
/// detector (and therefore its space and points) move onto the per-shard
/// pump threads of the sharded engine.
///
/// `prepare` must be *idempotent* (`prepare(prepare(p)) == prepare(p)`):
/// the sharded engine prepares a point once for pivot routing and the
/// receiving shard's detector prepares it again on insertion.
pub trait Space: Send + Sync {
    /// The object type flowing through the stream.
    type Point: Clone + Send + Sync;

    /// Exact metric distance between two points.
    fn dist(&self, a: &Self::Point, b: &Self::Point) -> f64;

    /// One-time transform applied when a point enters the window (identity
    /// by default). Mirrors [`VectorMetric::preprocess`]: the angular
    /// metric normalizes to unit length here so every later distance is a
    /// single dot product.
    fn prepare(&self, p: Self::Point) -> Self::Point {
        p
    }

    /// Approximate heap + inline bytes one stored point occupies (state
    /// size reporting; the default counts only the inline size).
    fn point_bytes(&self, _p: &Self::Point) -> usize {
        std::mem::size_of::<Self::Point>()
    }
}

/// Fixed-dimension `f32` vectors under any [`VectorMetric`].
///
/// The dimension is pinned at construction; `prepare` asserts every
/// inserted point matches it, so a malformed producer fails at the
/// insertion boundary instead of deep inside a distance evaluation.
/// `Clone` exists so the sharded engine can hand every shard its own
/// copy of the space.
#[derive(Debug, Clone)]
pub struct VectorSpace<M> {
    metric: M,
    dim: usize,
}

impl<M: VectorMetric> VectorSpace<M> {
    /// A vector space of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(metric: M, dim: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        VectorSpace { metric, dim }
    }

    /// The pinned dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The metric in use.
    pub fn metric(&self) -> &M {
        &self.metric
    }
}

impl<M: VectorMetric> Space for VectorSpace<M> {
    type Point = Vec<f32>;

    #[inline]
    fn dist(&self, a: &Vec<f32>, b: &Vec<f32>) -> f64 {
        self.metric.dist(a, b)
    }

    /// # Panics
    /// Panics if the point's length differs from the space's dimension.
    fn prepare(&self, mut p: Vec<f32>) -> Vec<f32> {
        assert_eq!(
            p.len(),
            self.dim,
            "point dimension {} does not match space dimension {}",
            p.len(),
            self.dim
        );
        self.metric.preprocess(&mut p, self.dim);
        p
    }

    fn point_bytes(&self, p: &Vec<f32>) -> usize {
        std::mem::size_of::<Vec<f32>>() + p.capacity() * std::mem::size_of::<f32>()
    }
}

/// Strings under Levenshtein edit distance (the paper's Words space).
#[derive(Debug, Clone, Copy, Default)]
pub struct StringSpace;

impl Space for StringSpace {
    type Point = String;

    #[inline]
    fn dist(&self, a: &String, b: &String) -> f64 {
        f64::from(edit_distance(a.as_bytes(), b.as_bytes()))
    }

    fn point_bytes(&self, p: &String) -> usize {
        std::mem::size_of::<String>() + p.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::{Angular, L2};

    #[test]
    fn vector_space_measures_like_the_metric() {
        let s = VectorSpace::new(L2, 2);
        let a = s.prepare(vec![0.0, 0.0]);
        let b = s.prepare(vec![3.0, 4.0]);
        assert_eq!(s.dist(&a, &b), 5.0);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.metric().name(), "L2");
    }

    #[test]
    fn angular_space_normalizes_on_prepare() {
        let s = VectorSpace::new(Angular, 2);
        let a = s.prepare(vec![2.0, 0.0]);
        let b = s.prepare(vec![0.0, 7.0]);
        assert!((a[0] - 1.0).abs() < 1e-6, "prepare must normalize");
        assert!((s.dist(&a, &b) - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "does not match space dimension")]
    fn wrong_dimension_is_rejected_at_the_boundary() {
        let s = VectorSpace::new(L2, 3);
        let _ = s.prepare(vec![1.0, 2.0]);
    }

    #[test]
    fn string_space_is_edit_distance() {
        let s = StringSpace;
        assert_eq!(s.dist(&"cat".into(), &"hat".into()), 1.0);
        assert_eq!(s.dist(&"".into(), &"abc".into()), 3.0);
    }
}
