//! Window-semantics edge cases: expiry ordering, duplicates, windows
//! smaller than `k`, empty windows, and time-based horizons.

use dod_metrics::{Dataset, L2};
use dod_stream::{
    Backend, GraphParams, StreamDetector, StreamParams, StringSpace, VectorSpace, WindowSpec,
};

fn both() -> [Backend; 2] {
    [Backend::Exhaustive, Backend::Graph(GraphParams::default())]
}

#[test]
fn expiry_is_strictly_fifo() {
    for backend in both() {
        let params = StreamParams::count(1.0, 1, 5);
        let mut d = StreamDetector::try_with_backend(VectorSpace::new(L2, 1), params, backend)
            .expect("valid params");
        let mut expired_log = Vec::new();
        for i in 0..20 {
            let report = d.insert(vec![i as f32]);
            assert_eq!(report.seq, i);
            assert!(report.window_len <= 5);
            expired_log.extend(report.expired);
        }
        // Every expiry in arrival order, exactly the seqs that must be gone.
        assert_eq!(expired_log, (0..15).collect::<Vec<u64>>());
        assert_eq!(d.window_seqs(), vec![15, 16, 17, 18, 19]);
        assert!(d.get(14).is_none());
        assert!(d.get(15).is_some());
    }
}

#[test]
fn duplicate_points_count_each_other() {
    for backend in both() {
        // Window full of identical points: everyone has W−1 neighbors at
        // distance zero, so nothing is an outlier even at r = 0.
        let params = StreamParams::count(0.0, 3, 8);
        let mut d = StreamDetector::try_with_backend(VectorSpace::new(L2, 1), params, backend)
            .expect("valid params");
        for _ in 0..12 {
            d.insert(vec![7.0]);
        }
        assert!(d.outliers().is_empty(), "{}", d.backend_name());
        assert_eq!(d.outliers(), d.audit());
    }
}

#[test]
fn window_smaller_than_k_flags_everything() {
    for backend in both() {
        // W = 4 but k = 10: nobody can ever reach 10 neighbors.
        let params = StreamParams::count(100.0, 10, 4);
        let mut d = StreamDetector::try_with_backend(VectorSpace::new(L2, 1), params, backend)
            .expect("valid params");
        for i in 0..9 {
            d.insert(vec![i as f32 * 0.01]);
        }
        assert_eq!(d.outliers(), vec![5, 6, 7, 8], "{}", d.backend_name());
        assert_eq!(d.outliers(), d.audit());
    }
}

#[test]
fn empty_window_has_no_outliers() {
    for backend in both() {
        let params = StreamParams::timed(1.0, 2, 5.0);
        let mut d = StreamDetector::try_with_backend(VectorSpace::new(L2, 1), params, backend)
            .expect("valid params");
        assert!(d.is_empty());
        assert!(d.outliers().is_empty());
        assert!(d.audit().is_empty());
        d.insert_at(vec![1.0], 0.0);
        d.insert_at(vec![1.1], 1.0);
        assert_eq!(d.len(), 2);
        // The stream goes quiet; everything ages out.
        let expired = d.advance_to(100.0);
        assert_eq!(expired, vec![0, 1]);
        assert!(d.is_empty());
        assert!(d.outliers().is_empty());
        // And the detector keeps working afterwards.
        d.insert_at(vec![2.0], 101.0);
        assert_eq!(d.outliers(), vec![2]);
    }
}

#[test]
fn time_window_keeps_exactly_the_horizon() {
    for backend in both() {
        let params = StreamParams::timed(0.5, 1, 10.0);
        let mut d = StreamDetector::try_with_backend(VectorSpace::new(L2, 1), params, backend)
            .expect("valid params");
        // One point every 4 time units; horizon 10 keeps at most 3 alive.
        for i in 0..8u64 {
            let report = d.insert_at(vec![(i % 2) as f32], 4.0 * i as f64);
            assert!(report.window_len <= 3, "window too long at t={}", 4 * i);
        }
        // t = 28: alive are t ∈ {20, 24, 28} → seqs 5, 6, 7.
        assert_eq!(d.window_seqs(), vec![5, 6, 7]);
        assert_eq!(d.outliers(), d.audit(), "{}", d.backend_name());
    }
}

#[test]
fn boundary_distance_counts_as_neighbor() {
    for backend in both() {
        // dist == r must count (Definition 1 uses <=), streaming included.
        let params = StreamParams::count(1.0, 1, 4);
        let mut d = StreamDetector::try_with_backend(VectorSpace::new(L2, 1), params, backend)
            .expect("valid params");
        d.insert(vec![0.0]);
        d.insert(vec![1.0]);
        assert!(d.outliers().is_empty(), "{}", d.backend_name());
    }
}

#[test]
fn string_space_streams_work() {
    let params = StreamParams::count(1.0, 1, 6);
    let mut d = StreamDetector::try_new(StringSpace, params).expect("valid params");
    for w in ["cat", "bat", "hat", "rat", "zzzzzzzzzz"] {
        d.insert(w.to_string());
    }
    assert_eq!(d.outliers(), vec![4]);
    assert_eq!(d.outliers(), d.audit());
}

#[test]
fn window_view_matches_window_contents() {
    let params = StreamParams::count(1.0, 1, 3);
    let mut d = StreamDetector::try_new(VectorSpace::new(L2, 1), params).expect("valid params");
    for x in [1.0f32, 2.0, 3.0, 4.0] {
        d.insert(vec![x]);
    }
    let view = d.window_view();
    assert_eq!(view.len(), 3);
    assert_eq!(view.seq_at(0), 1);
    assert_eq!(view.dist(0, 2), 2.0);
    assert_eq!(d.window_seqs(), vec![1, 2, 3]);
}

#[test]
#[should_panic(expected = "non-decreasing")]
fn out_of_order_timestamps_are_rejected() {
    let params = StreamParams::timed(1.0, 1, 5.0);
    let mut d = StreamDetector::try_new(VectorSpace::new(L2, 1), params).expect("valid params");
    d.insert_at(vec![0.0], 10.0);
    d.insert_at(vec![1.0], 9.0);
}

#[test]
fn zero_capacity_window_is_rejected() {
    let params = StreamParams {
        r: 1.0,
        k: 1,
        window: WindowSpec::Count(0),
    };
    let err = StreamDetector::try_new(VectorSpace::new(L2, 1), params)
        .err()
        .expect("zero-capacity window must be rejected");
    assert!(err.to_string().contains("capacity >= 1"), "{err}");
}
