//! The streaming engine's defining property: after **every** slide, the
//! incremental outlier set equals a from-scratch batch detection over the
//! current window contents — for both backends, across `(r, k, W)` and
//! seeds.

use dod_core::nested_loop;
use dod_core::DodParams;
use dod_metrics::L2;
use dod_stream::{Backend, GraphParams, StreamDetector, StreamParams, VectorSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small clustered stream with planted far points: roughly 10% of
/// arrivals land far from the three drifting cluster centers.
fn stream_points(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centers = [0.0f32, 4.0, 8.0];
    (0..n)
        .map(|_| {
            // Slow concentration drift.
            for c in &mut centers {
                *c += rng.gen_range(-0.05f32..0.05);
            }
            if rng.gen_bool(0.1) {
                vec![rng.gen_range(40.0f32..80.0), rng.gen_range(40.0f32..80.0)]
            } else {
                let c = centers[rng.gen_range(0usize..3)];
                vec![c + rng.gen_range(-0.7f32..0.7), rng.gen_range(-0.7f32..0.7)]
            }
        })
        .collect()
}

/// Batch ground truth over the live window, as seqs.
fn batch_outliers(det: &StreamDetector<VectorSpace<L2>>, r: f64, k: usize) -> Vec<u64> {
    let view = det.window_view();
    let res = nested_loop::detect(&view, &DodParams::new(r, k), 7);
    res.outliers
        .into_iter()
        .map(|pos| view.seq_at(pos as usize))
        .collect()
}

fn check_backend(backend: Backend, r: f64, k: usize, w: usize, seed: u64) {
    let params = StreamParams::count(r, k, w);
    let mut det = StreamDetector::try_with_backend(VectorSpace::new(L2, 2), params, backend)
        .expect("valid params");
    for p in stream_points(90, seed) {
        det.insert(p);
        let got = det.outliers();
        let want = batch_outliers(&det, r, k);
        assert_eq!(
            got,
            want,
            "backend={} r={r} k={k} w={w} seed={seed} len={}",
            det.backend_name(),
            det.len()
        );
        assert_eq!(got, det.audit(), "audit disagrees ({})", det.backend_name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn exhaustive_backend_matches_batch_after_every_slide(
        r in 0.3f64..3.0,
        k in 1usize..6,
        w in 2usize..48,
        seed in 0u64..10_000,
    ) {
        check_backend(Backend::Exhaustive, r, k, w, seed);
    }

    #[test]
    fn graph_backend_matches_batch_after_every_slide(
        r in 0.3f64..3.0,
        k in 1usize..6,
        w in 2usize..48,
        seed in 0u64..10_000,
    ) {
        check_backend(Backend::Graph(GraphParams::default()), r, k, w, seed);
    }

    #[test]
    fn graph_backend_stays_exact_with_hostile_tuning(
        seed in 0u64..10_000,
        m in 1usize..4,
        ef in 1usize..6,
        cap in 1usize..4,
    ) {
        // A deliberately starved graph (tiny beam, tiny degree, tiny
        // discovery cap) must still be exact — quality only moves work to
        // the lazy repair.
        let gp = GraphParams { m, ef, discover_cap: cap, prune_above: 4 * m, ..GraphParams::default() };
        check_backend(Backend::Graph(gp), 1.2, 3, 24, seed);
    }
}

#[test]
fn backends_agree_with_each_other_throughout() {
    let params = StreamParams::count(1.0, 3, 64);
    let mut a =
        StreamDetector::try_with_backend(VectorSpace::new(L2, 2), params, Backend::Exhaustive)
            .expect("valid params");
    let mut b = StreamDetector::try_with_backend(
        VectorSpace::new(L2, 2),
        params,
        Backend::Graph(GraphParams::default()),
    )
    .expect("valid params");
    for p in stream_points(300, 42) {
        a.insert(p.clone());
        b.insert(p);
        assert_eq!(a.outliers(), b.outliers(), "at len {}", a.len());
    }
    // The graph backend should have promoted plenty of safe inliers along
    // the way (the whole point of succeeding-neighbor tracking).
    assert!(b.stats().safe_promotions > 0);
}
