//! The sampled discovery-recall auditor: exact backends audit at recall
//! 1.0 by construction, a healthy graph stays near 1.0, a deliberately
//! degraded graph falls measurably — and exactness holds throughout,
//! because verdicts are repaired against the window, never the graph.

use dod_core::DodError;
use dod_metrics::L2;
use dod_stream::{Backend, GraphParams, StreamDetector, StreamParams, VectorSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clustered_stream(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.08) {
                vec![rng.gen_range(30.0f32..60.0), rng.gen_range(30.0f32..60.0)]
            } else {
                let c = [0.0f32, 3.0, 6.0][rng.gen_range(0usize..3)];
                vec![c + rng.gen_range(-0.6f32..0.6), rng.gen_range(-0.6f32..0.6)]
            }
        })
        .collect()
}

fn audited_detector(backend: Backend, w: usize) -> StreamDetector<VectorSpace<L2>> {
    let mut det = StreamDetector::try_with_backend(
        VectorSpace::new(L2, 2),
        StreamParams::count(1.0, 3, w),
        backend,
    )
    .expect("valid params");
    // Audit every slide so short test streams accumulate real samples.
    det.set_audit_params(1, 8).expect("valid audit knobs");
    det
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// When discovery is complete, the full `audit()` agrees with
    /// `outliers()` after every slide AND the sampled recall estimate is
    /// pinned to exactly 1.0 — not approximately: hits equals expected
    /// resident by resident.
    #[test]
    fn exact_discovery_pins_the_estimate_to_one(
        seed in 0u64..10_000,
        w in 4usize..48,
    ) {
        let mut det = audited_detector(Backend::Exhaustive, w);
        for p in clustered_stream(80, seed) {
            det.insert(p);
            prop_assert_eq!(det.outliers(), det.audit());
        }
        let stats = det.stats();
        prop_assert!(stats.recall_audits > 0, "auditor never ran");
        prop_assert_eq!(stats.recall_hits, stats.recall_expected);
        prop_assert_eq!(stats.recall_estimate(), 1.0);
    }

    /// The graph backend's estimate is a true recall: within [0, 1],
    /// with exactness pinned independently of it.
    #[test]
    fn graph_estimate_is_a_recall_and_exactness_holds(
        seed in 0u64..10_000,
    ) {
        let mut det = audited_detector(Backend::Graph(GraphParams::default()), 32);
        for p in clustered_stream(80, seed) {
            det.insert(p);
            prop_assert_eq!(det.outliers(), det.audit());
        }
        let stats = det.stats();
        prop_assert!(stats.recall_audits > 0);
        prop_assert!(stats.recall_hits <= stats.recall_expected);
        let est = stats.recall_estimate();
        prop_assert!((0.0..=1.0).contains(&est), "estimate {est} outside [0,1]");
    }
}

/// Dropping the graph's edges by hand must show up in the estimate —
/// and must NOT show up in the answers.
#[test]
fn injected_edge_loss_degrades_the_estimate_but_not_the_answers() {
    let mut det = audited_detector(Backend::Graph(GraphParams::default()), 64);
    let points = clustered_stream(400, 7);
    let (warm, rest) = points.split_at(200);
    for p in warm {
        det.insert(p.clone());
    }
    let healthy = det.stats();
    assert!(healthy.recall_audits > 0, "no audits during warm-up");
    let healthy_est = healthy.recall_estimate();
    assert!(
        healthy_est > 0.8,
        "healthy graph discovery unexpectedly weak: {healthy_est}"
    );

    // Sever every link. New insertions re-link themselves, but the
    // existing window's residents become near-undiscoverable.
    det.inject_edge_loss(0);
    for p in rest {
        det.insert(p.clone());
        // Exactness is untouched: repairs scan the window, not the graph.
        assert_eq!(det.outliers(), det.audit());
    }
    let after = det.stats();
    let degraded_hits = after.recall_hits - healthy.recall_hits;
    let degraded_expected = after.recall_expected - healthy.recall_expected;
    assert!(
        degraded_expected > 0,
        "post-degradation audits found nobody"
    );
    let degraded_est = degraded_hits as f64 / degraded_expected as f64;
    assert!(
        degraded_est < healthy_est,
        "estimate did not fall: healthy {healthy_est} vs degraded {degraded_est}"
    );
    // The lifetime gauge (what /metrics exports) moves too.
    assert!(
        after.recall_estimate() < healthy_est,
        "exported estimate did not move: {} vs {healthy_est}",
        after.recall_estimate()
    );
}

/// The graph's structural health document tracks the window and its
/// maintenance history.
#[test]
fn graph_health_document_tracks_structure() {
    let mut det = audited_detector(Backend::Graph(GraphParams::default()), 48);
    for p in clustered_stream(300, 11) {
        det.insert(p);
    }
    let h = det.index_health();
    assert!(!h.exact);
    assert_eq!(h.live, 48, "live vertices = window residents");
    let ratio = h.tombstone_ratio();
    assert!((0.0..1.0).contains(&ratio), "tombstone ratio {ratio}");
    assert!(h.compactions > 0, "252 expirations never compacted");
    assert!(h.bridge_edges > 0, "compaction never bridged");
    let hist_total: u64 = h.degree_hist.iter().sum();
    assert_eq!(hist_total, h.live + h.tombstones, "histogram covers arena");

    // The exhaustive backend has no structure to degrade.
    let det = audited_detector(Backend::Exhaustive, 48);
    let h = det.index_health();
    assert!(h.exact);
    assert_eq!((h.live, h.tombstones), (0, 0));
    assert_eq!(h.tombstone_ratio(), 0.0);
}

/// Audit knobs reject nonsense with typed errors instead of clamping.
#[test]
fn audit_knobs_are_validated_not_clamped() {
    let gp = GraphParams {
        sample_rate: 0,
        ..GraphParams::default()
    };
    match StreamDetector::try_with_backend(
        VectorSpace::new(L2, 2),
        StreamParams::count(1.0, 3, 16),
        Backend::Graph(gp),
    ) {
        Err(err) => assert!(matches!(err, DodError::InvalidSpec { .. }), "{err}"),
        Ok(_) => panic!("zero sample_rate must not construct"),
    }

    let mut det = audited_detector(Backend::Exhaustive, 16);
    let err = det
        .set_audit_params(0, 4)
        .expect_err("zero sample_rate must not reconfigure");
    assert!(matches!(err, DodError::InvalidSpec { .. }), "{err}");
    // audit_sample = 0 is the documented off switch, not an error.
    det.set_audit_params(1, 0).expect("disabling is valid");
    for p in clustered_stream(40, 3) {
        det.insert(p);
    }
    assert_eq!(det.stats().recall_audits, 0, "disabled auditor ran");
}
