//! The `/v1` resource API's request and response shapes, as plain data.
//!
//! The serving layer (`dod_server`) and its clients need to agree on the
//! JSON bodies of the resource routes — engine creation, the engine
//! listing, session creation, the session listing, and the uniform error
//! envelope every non-2xx answer carries. This module is that agreement
//! in one place: each shape is a plain struct with a
//! `to_json`/`from_json` pair over [`JsonValue`], so the server renders
//! and parses the exact same text a test (or another process) does.
//!
//! Everything here is *wire-typed* — strings and numbers, no engine
//! types — so the crate stays dependency-free and both ends of the wire
//! can use it.

use crate::JsonValue;

/// The `{"error": {"kind", "message"}}` envelope carried by **every**
/// non-2xx response body, from route-level validation failures down to
/// HTTP framing errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorEnvelope {
    /// Machine-readable failure class (snake_case, bounded set).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
}

impl ErrorEnvelope {
    /// Builds the envelope.
    pub fn new(kind: impl Into<String>, message: impl Into<String>) -> Self {
        ErrorEnvelope {
            kind: kind.into(),
            message: message.into(),
        }
    }

    /// The envelope as a [`JsonValue`].
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([(
            "error",
            JsonValue::obj([
                ("kind", self.kind.as_str()),
                ("message", self.message.as_str()),
            ]),
        )])
    }

    /// Renders the envelope to its wire text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses an envelope back out of a response body.
    pub fn from_json(v: &JsonValue) -> Option<Self> {
        let err = v.get("error")?;
        Some(ErrorEnvelope {
            kind: err.get("kind")?.as_str()?.to_string(),
            message: err.get("message")?.as_str()?.to_string(),
        })
    }
}

/// One entry of the `GET /v1/engines` listing (and the body answered by
/// `PUT`/`GET /v1/engines/{name}`): the engine's identity and footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSummary {
    /// Registry name (the `{name}` path parameter).
    pub name: String,
    /// Canonical index spelling (`mrpg:8`, `vptree`, …) — the same text
    /// an engine-creation body carries.
    pub index: String,
    /// Objects the engine serves.
    pub points: u64,
    /// Index footprint in bytes (the listing's memory estimate).
    pub index_bytes: u64,
}

impl EngineSummary {
    /// The summary as a [`JsonValue`] object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("name", JsonValue::from(self.name.as_str())),
            ("index", JsonValue::from(self.index.as_str())),
            ("points", JsonValue::from(self.points)),
            ("index_bytes", JsonValue::from(self.index_bytes)),
        ])
    }

    /// Parses a summary out of a listing entry.
    pub fn from_json(v: &JsonValue) -> Option<Self> {
        Some(EngineSummary {
            name: v.get("name")?.as_str()?.to_string(),
            index: v.get("index")?.as_str()?.to_string(),
            points: v.get("points")?.as_f64()? as u64,
            index_bytes: v.get("index_bytes")?.as_f64()? as u64,
        })
    }
}

/// One entry of the `GET /v1/sessions` listing (and the body answered by
/// `POST /v1/sessions`): the session's identity and stream shape.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    /// Session id (the `{id}` path parameter), assigned by the server.
    pub id: String,
    /// Wire name of the session's metric (`l1`, `l2`, `l4`, `angular`).
    pub metric: String,
    /// Pinned vector dimension of the session's space.
    pub dim: u64,
    /// Shards the session's window is partitioned across.
    pub shards: u64,
    /// Points accepted over HTTP so far.
    pub ingested: u64,
    /// Whether the session writes a WAL and survives restarts.
    pub durable: bool,
    /// Durable sessions only: `"ok"` while the WAL is being written,
    /// `"degraded"` after an I/O failure latched the session into
    /// fail-open (it keeps serving from memory, nothing is logged
    /// anymore). Absent for volatile sessions.
    pub durability: Option<String>,
}

impl SessionSummary {
    /// The summary as a [`JsonValue`] object.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("id".to_string(), JsonValue::from(self.id.as_str())),
            ("metric".to_string(), JsonValue::from(self.metric.as_str())),
            ("dim".to_string(), JsonValue::from(self.dim)),
            ("shards".to_string(), JsonValue::from(self.shards)),
            ("ingested".to_string(), JsonValue::from(self.ingested)),
            ("durable".to_string(), JsonValue::from(self.durable)),
        ];
        if let Some(d) = &self.durability {
            fields.push(("durability".to_string(), JsonValue::from(d.as_str())));
        }
        JsonValue::Obj(fields)
    }

    /// Parses a summary out of a listing entry. `durable` defaults to
    /// `false` (and `durability` to absent) when missing, so
    /// pre-durability listings still parse.
    pub fn from_json(v: &JsonValue) -> Option<Self> {
        Some(SessionSummary {
            id: v.get("id")?.as_str()?.to_string(),
            metric: v.get("metric")?.as_str()?.to_string(),
            dim: v.get("dim")?.as_f64()? as u64,
            shards: v.get("shards")?.as_f64()? as u64,
            ingested: v.get("ingested")?.as_f64()? as u64,
            durable: v
                .get("durable")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            durability: v
                .get("durability")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
        })
    }
}

/// The per-query `"cost"` object attached to each result when a
/// `POST /v1/query` body carries `"explain": true` (and to every entry
/// of the `GET /v1/debug/slow` ring): distance evaluations split by
/// phase, graph hops, and the live pruning power against the
/// nested-loop baseline `n·(n−1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCostShape {
    /// Distance evaluations spent in the filtering phase.
    pub filter_dist_evals: u64,
    /// Distance evaluations spent verifying candidates.
    pub verify_dist_evals: u64,
    /// All distance evaluations (the sum, carried explicitly so clients
    /// never re-derive it).
    pub total_dist_evals: u64,
    /// Graph vertices expanded across every traversal.
    pub hops: u64,
    /// `1 − total_dist_evals / n(n−1)`, clamped to `[0, 1]`.
    pub pruning_power: f64,
}

impl QueryCostShape {
    /// The cost as a [`JsonValue`] object (field order is the wire
    /// contract — tests pin the rendered text).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("filter_dist_evals", JsonValue::from(self.filter_dist_evals)),
            ("verify_dist_evals", JsonValue::from(self.verify_dist_evals)),
            ("total_dist_evals", JsonValue::from(self.total_dist_evals)),
            ("hops", JsonValue::from(self.hops)),
            ("pruning_power", JsonValue::from(self.pruning_power)),
        ])
    }

    /// Parses a cost object back out of a response.
    pub fn from_json(v: &JsonValue) -> Option<Self> {
        Some(QueryCostShape {
            filter_dist_evals: v.get("filter_dist_evals")?.as_f64()? as u64,
            verify_dist_evals: v.get("verify_dist_evals")?.as_f64()? as u64,
            total_dist_evals: v.get("total_dist_evals")?.as_f64()? as u64,
            hops: v.get("hops")?.as_f64()? as u64,
            pruning_power: v.get("pruning_power")?.as_f64()?,
        })
    }
}

/// The `PUT /v1/engines/{name}` request body: the engine's recipe.
///
/// `index` defaults server-side when absent; `load` names a persisted
/// engine payload to restore instead of building the index fresh.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCreateRequest {
    /// Dataset family name (`sift`, `glove`, …).
    pub family: String,
    /// Number of objects to generate.
    pub n: u64,
    /// Generation seed (default 0).
    pub seed: u64,
    /// Canonical index spelling; `None` lets the server pick its default.
    pub index: Option<String>,
    /// Path to an `Engine::save` payload to load instead of building.
    pub load: Option<String>,
}

impl EngineCreateRequest {
    /// Parses the request body, reporting the first missing or mistyped
    /// field in words.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let family = v
            .get("family")
            .and_then(JsonValue::as_str)
            .ok_or("body must carry a string \"family\"")?
            .to_string();
        let n = v
            .get("n")
            .and_then(JsonValue::as_usize)
            .ok_or("body must carry a non-negative integer \"n\"")? as u64;
        let seed = v.get("seed").map_or(Ok(0), |s| {
            s.as_usize()
                .map(|s| s as u64)
                .ok_or("\"seed\" must be a non-negative integer")
        })?;
        let field_str = |key: &'static str| match v.get(key) {
            None => Ok(None),
            Some(s) => s
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or("must be a string"),
        };
        let index = field_str("index").map_err(|e| format!("\"index\" {e}"))?;
        let load = field_str("load").map_err(|e| format!("\"load\" {e}"))?;
        Ok(EngineCreateRequest {
            family,
            n,
            seed,
            index,
            load,
        })
    }

    /// The request as a [`JsonValue`] body (the client side).
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("family".to_string(), JsonValue::from(self.family.as_str())),
            ("n".to_string(), JsonValue::from(self.n)),
            ("seed".to_string(), JsonValue::from(self.seed)),
        ];
        if let Some(index) = &self.index {
            fields.push(("index".to_string(), JsonValue::from(index.as_str())));
        }
        if let Some(load) = &self.load {
            fields.push(("load".to_string(), JsonValue::from(load.as_str())));
        }
        JsonValue::Obj(fields)
    }
}

/// The sliding window of a session-creation body: `{"count": w}` or
/// `{"time": horizon}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowShape {
    /// Keep the most recent `w` points.
    Count(u64),
    /// Keep points within a time horizon.
    Time(f64),
}

/// The `"sync"` field of a durable session-creation body: when appended
/// WAL frames are forced to disk. `"always"`, `"never"`, or a positive
/// integer (fsync every N appends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncShape {
    /// fsync after every append — an acked point survives any crash.
    Always,
    /// fsync every `n` appends — bounded loss, amortized cost.
    EveryN(u64),
    /// Never fsync explicitly; the OS flushes on its own schedule.
    Never,
}

impl SyncShape {
    /// Parses the wire value: the strings `"always"`/`"never"`, or a
    /// positive integer meaning every-N.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        if let Some(s) = v.as_str() {
            return match s {
                "always" => Ok(SyncShape::Always),
                "never" => Ok(SyncShape::Never),
                _ => Err(format!(
                    "\"sync\" must be \"always\", \"never\" or a positive integer, got {s:?}"
                )),
            };
        }
        match v.as_usize() {
            Some(n) if n >= 1 => Ok(SyncShape::EveryN(n as u64)),
            _ => Err("\"sync\" must be \"always\", \"never\" or a positive integer".to_string()),
        }
    }

    /// The value as it travels on the wire.
    pub fn to_json(self) -> JsonValue {
        match self {
            SyncShape::Always => JsonValue::from("always"),
            SyncShape::Never => JsonValue::from("never"),
            SyncShape::EveryN(n) => JsonValue::from(n),
        }
    }
}

/// The `POST /v1/sessions` request body: the stream's space, query and
/// sharding.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCreateRequest {
    /// Wire name of the metric (`l1`, `l2`, `l4`, `angular`).
    pub metric: String,
    /// Vector dimension of the stream.
    pub dim: u64,
    /// Query radius the window is monitored at.
    pub r: f64,
    /// Query count threshold `k`.
    pub k: u64,
    /// The sliding window.
    pub window: WindowShape,
    /// Shards to partition the window across (default 1).
    pub shards: u64,
    /// Warm-up prefix override; `None` keeps the shard-spec default.
    pub warmup: Option<u64>,
    /// Pivot oversampling override; `None` keeps the shard-spec default.
    pub pivots_per_shard: Option<u64>,
    /// Whether the session writes a WAL and is recovered on restart
    /// (default `false`; requires the server to have a data directory).
    pub durable: bool,
    /// WAL sync policy; `None` keeps the server default (`"always"` —
    /// a durable wire session's ack means the point is on disk).
    pub sync: Option<SyncShape>,
    /// Snapshot (and log-truncate) after this many logged operations;
    /// `None` keeps the server default.
    pub snapshot_ops: Option<u64>,
    /// Recall-audit cadence: audit every `sample_rate` per-shard slides.
    /// `None` keeps the engine default; zero is rejected server-side
    /// with a typed error, never clamped.
    pub sample_rate: Option<u64>,
    /// Residents re-checked per audit; `0` disables auditing. `None`
    /// keeps the engine default.
    pub audit_sample: Option<u64>,
}

impl SessionCreateRequest {
    /// Parses the request body, reporting the first missing or mistyped
    /// field in words.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let metric = v
            .get("metric")
            .and_then(JsonValue::as_str)
            .ok_or("body must carry a string \"metric\"")?
            .to_string();
        let dim = v
            .get("dim")
            .and_then(JsonValue::as_usize)
            .ok_or("body must carry a positive integer \"dim\"")? as u64;
        let r = v
            .get("r")
            .and_then(JsonValue::as_f64)
            .ok_or("body must carry a numeric \"r\"")?;
        let k = v
            .get("k")
            .and_then(JsonValue::as_usize)
            .ok_or("body must carry a non-negative integer \"k\"")? as u64;
        let window = v.get("window").ok_or("body must carry a \"window\"")?;
        let window = match (window.get("count"), window.get("time")) {
            (Some(c), None) => WindowShape::Count(
                c.as_usize()
                    .ok_or("\"window\".\"count\" must be a positive integer")?
                    as u64,
            ),
            (None, Some(t)) => {
                WindowShape::Time(t.as_f64().ok_or("\"window\".\"time\" must be numeric")?)
            }
            _ => return Err("\"window\" must be {\"count\": w} or {\"time\": horizon}".to_string()),
        };
        let field_u64 = |key: &'static str| match v.get(key) {
            None => Ok(None),
            Some(s) => s
                .as_usize()
                .map(|s| Some(s as u64))
                .ok_or(format!("\"{key}\" must be a non-negative integer")),
        };
        let durable = match v.get("durable") {
            None => false,
            Some(b) => b.as_bool().ok_or("\"durable\" must be a boolean")?,
        };
        let sync = match v.get("sync") {
            None => None,
            Some(s) => Some(SyncShape::from_json(s)?),
        };
        Ok(SessionCreateRequest {
            metric,
            dim,
            r,
            k,
            window,
            shards: field_u64("shards")?.unwrap_or(1),
            warmup: field_u64("warmup")?,
            pivots_per_shard: field_u64("pivots_per_shard")?,
            durable,
            sync,
            snapshot_ops: field_u64("snapshot_ops")?,
            sample_rate: field_u64("sample_rate")?,
            audit_sample: field_u64("audit_sample")?,
        })
    }

    /// The request as a [`JsonValue`] body (the client side).
    pub fn to_json(&self) -> JsonValue {
        let window = match self.window {
            WindowShape::Count(w) => JsonValue::obj([("count", JsonValue::from(w))]),
            WindowShape::Time(t) => JsonValue::obj([("time", JsonValue::from(t))]),
        };
        let mut fields = vec![
            ("metric".to_string(), JsonValue::from(self.metric.as_str())),
            ("dim".to_string(), JsonValue::from(self.dim)),
            ("r".to_string(), JsonValue::from(self.r)),
            ("k".to_string(), JsonValue::from(self.k)),
            ("window".to_string(), window),
            ("shards".to_string(), JsonValue::from(self.shards)),
        ];
        if let Some(w) = self.warmup {
            fields.push(("warmup".to_string(), JsonValue::from(w)));
        }
        if let Some(p) = self.pivots_per_shard {
            fields.push(("pivots_per_shard".to_string(), JsonValue::from(p)));
        }
        if self.durable {
            fields.push(("durable".to_string(), JsonValue::from(true)));
        }
        if let Some(sync) = self.sync {
            fields.push(("sync".to_string(), sync.to_json()));
        }
        if let Some(n) = self.snapshot_ops {
            fields.push(("snapshot_ops".to_string(), JsonValue::from(n)));
        }
        if let Some(n) = self.sample_rate {
            fields.push(("sample_rate".to_string(), JsonValue::from(n)));
        }
        if let Some(n) = self.audit_sample {
            fields.push(("audit_sample".to_string(), JsonValue::from(n)));
        }
        JsonValue::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_json;

    #[test]
    fn error_envelope_round_trips() {
        let e = ErrorEnvelope::new("not_found", "no engine named x");
        let text = e.render();
        assert_eq!(
            text,
            r#"{"error":{"kind":"not_found","message":"no engine named x"}}"#
        );
        let back = ErrorEnvelope::from_json(&parse_json(&text).unwrap()).unwrap();
        assert_eq!(back, e);
        assert!(ErrorEnvelope::from_json(&parse_json("{}").unwrap()).is_none());
    }

    #[test]
    fn summaries_round_trip() {
        let e = EngineSummary {
            name: "prod".into(),
            index: "mrpg:8".into(),
            points: 4000,
            index_bytes: 123456,
        };
        assert_eq!(EngineSummary::from_json(&e.to_json()), Some(e.clone()));
        let s = SessionSummary {
            id: "s1".into(),
            metric: "l2".into(),
            dim: 3,
            shards: 2,
            ingested: 77,
            durable: true,
            durability: Some("degraded".into()),
        };
        assert_eq!(SessionSummary::from_json(&s.to_json()), Some(s));
        // Volatile summaries omit the durability health field entirely.
        let s = SessionSummary {
            id: "s2".into(),
            metric: "l2".into(),
            dim: 3,
            shards: 1,
            ingested: 0,
            durable: false,
            durability: None,
        };
        assert!(!s.to_json().render().contains("durability"));
        assert_eq!(SessionSummary::from_json(&s.to_json()), Some(s));
        // Listings from before durability parse with durable = false.
        let v = parse_json(r#"{"id":"s1","metric":"l2","dim":3,"shards":2,"ingested":0}"#).unwrap();
        assert!(!SessionSummary::from_json(&v).unwrap().durable);
    }

    #[test]
    fn query_cost_round_trips_with_pinned_field_order() {
        let c = QueryCostShape {
            filter_dist_evals: 1200,
            verify_dist_evals: 300,
            total_dist_evals: 1500,
            hops: 450,
            pruning_power: 0.75,
        };
        assert_eq!(
            c.to_json().render(),
            r#"{"filter_dist_evals":1200,"verify_dist_evals":300,"total_dist_evals":1500,"hops":450,"pruning_power":0.75}"#
        );
        assert_eq!(QueryCostShape::from_json(&c.to_json()), Some(c));
        assert!(QueryCostShape::from_json(&parse_json("{}").unwrap()).is_none());
    }

    #[test]
    fn engine_create_parses_and_reports_missing_fields() {
        let v = parse_json(r#"{"family":"sift","n":400,"seed":7,"index":"mrpg:6"}"#).unwrap();
        let req = EngineCreateRequest::from_json(&v).unwrap();
        assert_eq!(req.family, "sift");
        assert_eq!((req.n, req.seed), (400, 7));
        assert_eq!(req.index.as_deref(), Some("mrpg:6"));
        assert_eq!(req.load, None);
        assert_eq!(EngineCreateRequest::from_json(&req.to_json()), Ok(req));
        // Seed defaults, index optional.
        let v = parse_json(r#"{"family":"glove","n":10}"#).unwrap();
        let req = EngineCreateRequest::from_json(&v).unwrap();
        assert_eq!((req.seed, req.index), (0, None));
        // Missing and mistyped fields are named.
        let err = EngineCreateRequest::from_json(&parse_json(r#"{"n":1}"#).unwrap()).unwrap_err();
        assert!(err.contains("family"), "{err}");
        let err = EngineCreateRequest::from_json(
            &parse_json(r#"{"family":"sift","n":1,"index":3}"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("index"), "{err}");
    }

    #[test]
    fn session_create_parses_both_window_shapes() {
        let v = parse_json(
            r#"{"metric":"l2","dim":2,"r":0.8,"k":2,"window":{"count":32},"shards":2,"warmup":8}"#,
        )
        .unwrap();
        let req = SessionCreateRequest::from_json(&v).unwrap();
        assert_eq!(req.window, WindowShape::Count(32));
        assert_eq!((req.shards, req.warmup), (2, Some(8)));
        assert_eq!(SessionCreateRequest::from_json(&req.to_json()), Ok(req));
        let v = parse_json(r#"{"metric":"l1","dim":1,"r":1,"k":3,"window":{"time":5.5}}"#).unwrap();
        let req = SessionCreateRequest::from_json(&v).unwrap();
        assert_eq!(req.window, WindowShape::Time(5.5));
        assert_eq!(req.shards, 1, "shards default to 1");
        // A window must be exactly one of count/time.
        let v = parse_json(r#"{"metric":"l2","dim":1,"r":1,"k":1,"window":{}}"#).unwrap();
        assert!(SessionCreateRequest::from_json(&v).is_err());
    }

    #[test]
    fn session_create_parses_audit_knobs() {
        let v = parse_json(
            r#"{"metric":"l2","dim":2,"r":1,"k":2,"window":{"count":32},"sample_rate":64,"audit_sample":4}"#,
        )
        .unwrap();
        let req = SessionCreateRequest::from_json(&v).unwrap();
        assert_eq!(req.sample_rate, Some(64));
        assert_eq!(req.audit_sample, Some(4));
        assert_eq!(SessionCreateRequest::from_json(&req.to_json()), Ok(req));
        // Absent knobs stay absent (the engine default applies).
        let v = parse_json(r#"{"metric":"l2","dim":1,"r":1,"k":1,"window":{"count":8}}"#).unwrap();
        let req = SessionCreateRequest::from_json(&v).unwrap();
        assert_eq!((req.sample_rate, req.audit_sample), (None, None));
        assert!(!req.to_json().render().contains("sample_rate"));
        // Mistyped knobs are named; zero parses (the engine rejects it
        // with a typed error — the wire shape carries it verbatim).
        let err = SessionCreateRequest::from_json(
            &parse_json(
                r#"{"metric":"l2","dim":1,"r":1,"k":1,"window":{"count":8},"sample_rate":-2}"#,
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("sample_rate"), "{err}");
    }

    #[test]
    fn session_create_parses_durability_fields() {
        let v = parse_json(
            r#"{"metric":"l2","dim":2,"r":1,"k":2,"window":{"count":32},"durable":true,"sync":"always","snapshot_ops":64}"#,
        )
        .unwrap();
        let req = SessionCreateRequest::from_json(&v).unwrap();
        assert!(req.durable);
        assert_eq!(req.sync, Some(SyncShape::Always));
        assert_eq!(req.snapshot_ops, Some(64));
        assert_eq!(SessionCreateRequest::from_json(&req.to_json()), Ok(req));
        // Numeric sync means every-N; absent durability fields default off.
        let v = parse_json(r#"{"metric":"l2","dim":1,"r":1,"k":1,"window":{"count":8},"sync":16}"#)
            .unwrap();
        let req = SessionCreateRequest::from_json(&v).unwrap();
        assert_eq!(
            (req.durable, req.sync),
            (false, Some(SyncShape::EveryN(16)))
        );
        assert_eq!(SessionCreateRequest::from_json(&req.to_json()), Ok(req));
        // Mistyped durability fields are named.
        for (body, field) in [
            (
                r#"{"metric":"l2","dim":1,"r":1,"k":1,"window":{"count":8},"durable":1}"#,
                "durable",
            ),
            (
                r#"{"metric":"l2","dim":1,"r":1,"k":1,"window":{"count":8},"sync":"lazy"}"#,
                "sync",
            ),
            (
                r#"{"metric":"l2","dim":1,"r":1,"k":1,"window":{"count":8},"sync":0}"#,
                "sync",
            ),
            (
                r#"{"metric":"l2","dim":1,"r":1,"k":1,"window":{"count":8},"snapshot_ops":-1}"#,
                "snapshot_ops",
            ),
        ] {
            let err = SessionCreateRequest::from_json(&parse_json(body).unwrap()).unwrap_err();
            assert!(err.contains(field), "{body}: {err}");
        }
    }
}
