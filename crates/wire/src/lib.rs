//! The workspace's one JSON wire format — a std-only parser *and*
//! serializer shared by the HTTP serving layer (`dod_server`), the bench
//! harness's machine-readable artifacts (`dod_bench --json` /
//! `experiments compare`), and anything else that needs to put structured
//! data on a wire.
//!
//! The vendored `serde` stand-in has neither a serializer nor a
//! deserializer, so this crate carries both sides by hand: a
//! recursive-descent parser (promoted out of `dod_bench::compare`, where
//! it started life reading bench artifacts) and a compact renderer whose
//! output the parser round-trips. Keeping both in one crate is the point:
//! the server's responses, the bench artifacts and the tests that compare
//! them byte-for-byte all agree on one encoding.
//!
//! ```
//! use dod_wire::{parse_json, JsonValue};
//!
//! let v = JsonValue::obj([
//!     ("name", JsonValue::from("dod")),
//!     ("outliers", JsonValue::arr([1u32, 5, 9])),
//! ]);
//! let wire = v.render();
//! assert_eq!(wire, r#"{"name":"dod","outliers":[1,5,9]}"#);
//! assert_eq!(parse_json(&wire).unwrap(), v);
//! ```

pub mod shapes;

use std::fmt::Write as _;

/// A parsed or to-be-serialized JSON value.
///
/// Numbers are uniformly `f64` (the artifacts and the wire protocol never
/// need integers beyond 2^53); objects preserve insertion order so
/// rendering is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// Any number. Non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Num(f64::from(v))
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, V: Into<JsonValue>, I: IntoIterator<Item = (K, V)>>(
        fields: I,
    ) -> Self {
        JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn arr<V: Into<JsonValue>, I: IntoIterator<Item = V>>(items: I) -> Self {
        JsonValue::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in
    /// `usize` range (the id/count shape every protocol field uses).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u32::MAX as f64 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace). Non-finite
    /// numbers become `null`, mirroring the bench artifacts' convention.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Num(v) => out.push_str(&render_number(*v)),
            JsonValue::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders one JSON number the way every emitter in the workspace does:
/// full `f64` precision, integers without a trailing `.0`, non-finite as
/// `null`.
pub fn render_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    // `{}` on f64 prints integers without a decimal point and shortest
    // round-trippable form otherwise — exactly the artifact convention.
    format!("{v}")
}

/// Appends the JSON string-escape of `s` (without surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// The JSON string-escape of `s` (without surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

/// Parses a complete JSON document; trailing content is an error.
///
/// Accepts the full scalar set (objects, arrays, strings, numbers,
/// booleans, `null`); errors carry the byte offset so protocol consumers
/// can point at the offending spot.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

/// Nesting depth cap: the parser is recursive, and the server feeds it
/// attacker-controlled bodies — a few KB of `[[[[…` must be a parse
/// error, not a stack overflow.
const MAX_DEPTH: usize = 96;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {pos}",
            c as char,
            pos = *pos
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_DEPTH} at byte {pos}",
            pos = *pos
        ));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos, depth),
        Some(b'[') => parse_arr(b, pos, depth),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    b.get(at..at + 4)
        // All four bytes must be hex digits: from_str_radix alone would
        // also accept a sign, letting invalid escapes like \u+123 slip.
        .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
        .and_then(|h| std::str::from_utf8(h).ok())
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| "bad \\u escape".to_string())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let ch = if (0xd800..0xdc00).contains(&hex) {
                            // High surrogate: JSON escapes non-BMP chars
                            // as a \uD8xx\uDCxx pair — combine with the
                            // low half instead of emitting two U+FFFD.
                            let lo = (b.get(*pos + 1) == Some(&b'\\')
                                && b.get(*pos + 2) == Some(&b'u'))
                            .then(|| parse_hex4(b, *pos + 3).ok())
                            .flatten()
                            .filter(|l| (0xdc00..0xe000).contains(l));
                            lo.and_then(|lo| {
                                *pos += 6;
                                char::from_u32(0x10000 + ((hex - 0xd800) << 10) + (lo - 0xdc00))
                            })
                        } else {
                            // Lone low surrogates fall through to FFFD.
                            char::from_u32(hex)
                        };
                        out.push(ch.unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Pass UTF-8 through byte-faithfully.
                let s = &b[*pos..];
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                out.push_str(
                    std::str::from_utf8(&s[..ch_len.min(s.len())]).map_err(|_| "bad utf8")?,
                );
                *pos += ch_len;
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos, depth + 1)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_null_and_nesting() {
        let v =
            parse_json(r#"{"a": "q\"\\\nA", "b": [1, null, -2.5e-1], "c": true}"#).expect("parse");
        let JsonValue::Obj(fields) = &v else { panic!() };
        assert_eq!(fields[0].1, JsonValue::Str("q\"\\\nA".into()));
        assert_eq!(
            fields[1].1,
            JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Null,
                JsonValue::Num(-0.25)
            ])
        );
        assert_eq!(fields[2].1, JsonValue::Bool(true));
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{").is_err());
    }

    #[test]
    fn render_parse_round_trips() {
        let v = JsonValue::obj([
            ("s", JsonValue::from("a\"b\\c\nd\u{1}é")),
            ("n", JsonValue::from(-0.25)),
            ("i", JsonValue::from(12usize)),
            ("b", JsonValue::from(true)),
            ("z", JsonValue::Null),
            (
                "a",
                JsonValue::Arr(vec![JsonValue::from(1u32), JsonValue::obj([("k", 2u64)])]),
            ),
        ]);
        let wire = v.render();
        assert_eq!(parse_json(&wire).expect("round trip"), v);
    }

    #[test]
    fn rendering_is_compact_and_deterministic() {
        let v = JsonValue::obj([("a", JsonValue::arr([1u32, 2, 3])), ("b", "x".into())]);
        assert_eq!(v.render(), r#"{"a":[1,2,3],"b":"x"}"#);
        assert_eq!(v.render(), v.render());
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(render_number(2.5), "2.5");
        assert_eq!(render_number(3.0), "3");
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let v = parse_json(r#"{"queries":[{"r":1.5,"k":3}],"tag":"t"}"#).expect("parse");
        let queries = v.get("queries").and_then(JsonValue::as_arr).expect("arr");
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].get("r").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(queries[0].get("k").and_then(JsonValue::as_usize), Some(3));
        assert_eq!(v.get("tag").and_then(JsonValue::as_str), Some("t"));
        assert_eq!(v.get("missing"), None);
        // Fractional / negative / huge numbers are not usizes.
        assert_eq!(JsonValue::Num(1.5).as_usize(), None);
        assert_eq!(JsonValue::Num(-1.0).as_usize(), None);
        assert_eq!(JsonValue::Num(1e18).as_usize(), None);
    }

    #[test]
    fn depth_bomb_is_an_error_not_a_stack_overflow() {
        let bomb = "[".repeat(4000) + &"]".repeat(4000);
        assert!(parse_json(&bomb).is_err());
        let obj_bomb = r#"{"a":"#.repeat(4000);
        assert!(parse_json(&obj_bomb).is_err());
    }

    #[test]
    fn surrogate_pairs_decode_to_one_char_and_lone_halves_to_fffd() {
        // A valid pair is one astral-plane char, not two replacements.
        let v = parse_json("\"\\ud83d\\ude00\"").expect("parse");
        assert_eq!(v, JsonValue::Str("\u{1f600}".into()));
        // A \u-escaped BMP char still round-trips.
        let v = parse_json("\"\\u00e9\"").expect("parse");
        assert_eq!(v, JsonValue::Str("\u{e9}".into()));
        // Lone halves (high without low, bare low) degrade to U+FFFD.
        let v = parse_json(r#""\ud83dx""#).expect("parse");
        assert_eq!(v, JsonValue::Str("\u{fffd}x".into()));
        let v = parse_json(r#""\ude00""#).expect("parse");
        assert_eq!(v, JsonValue::Str("\u{fffd}".into()));
        // High followed by a \u escape that is not a low surrogate: the
        // lookahead must not consume the second escape.
        let v = parse_json("\"\\ud83d\\u0041\"").expect("parse");
        assert_eq!(v, JsonValue::Str("\u{fffd}\u{41}".into()));
        // A signed "hex" run is rejected, not parsed leniently.
        assert!(parse_json("\"\\u+123\"").is_err());
    }

    #[test]
    fn escape_helpers_match_rendering() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("\u{2}"), "\\u0002");
        let mut s = String::new();
        escape_into("x\ty", &mut s);
        assert_eq!(s, "x\\ty");
    }
}
