//! Ties the paper's causal story together: MRPG's construction phases
//! raise *reachability of neighbors* (§5), and higher reachability means
//! fewer filtering false positives (Table 7). Both ends are measured here
//! on the same data.

use dod::core::{Engine, Query};
use dod::datasets::{calibrate_r, Family};
use dod::graph::stats::neighbor_reachability;
use dod::graph::{mrpg, MrpgParams};

#[test]
fn mrpg_reaches_neighbors_at_least_as_well_as_kgraph() {
    let gen = Family::Glove.generate(2000, 11);
    let data = &gen.data;
    let k = 12;
    let r = calibrate_r(data, k, 0.01, 400, 2);

    let kgraph = mrpg::build_kgraph(data, 12, 2, 0);
    let (full, _) = mrpg::build(data, &{
        let mut p = MrpgParams::new(12);
        p.threads = 2;
        p
    });

    let kg_reach = neighbor_reachability(&kgraph, data, r, 200);
    let mrpg_reach = neighbor_reachability(&full, data, r, 200);
    assert!(
        mrpg_reach.mean_recall >= kg_reach.mean_recall - 0.01,
        "MRPG recall {} below KGraph {}",
        mrpg_reach.mean_recall,
        kg_reach.mean_recall
    );
    assert!(
        mrpg_reach.mean_recall > 0.9,
        "MRPG should reach the vast majority of neighbors, got {}",
        mrpg_reach.mean_recall
    );
}

#[test]
fn deficient_reachability_upper_bounds_false_positives() {
    // Every filtering false positive is an inlier whose traversal missed
    // some neighbors; the reachability probe (run exhaustively) must
    // therefore flag at least as many deficient objects as there are false
    // positives.
    let gen = Family::Sift.generate(1200, 19);
    let data = &gen.data;
    let k = 10;
    let r = calibrate_r(data, k, 0.02, 300, 4);

    let kgraph = mrpg::build_kgraph(data, 8, 2, 0);
    let reach = neighbor_reachability(&kgraph, data, r, 1200); // every object
    let report = Engine::builder(data)
        .prebuilt_graph(kgraph)
        .build()
        .expect("engine")
        .query(Query::new(r, k).expect("valid"))
        .expect("query");
    assert!(
        reach.deficient_objects >= report.false_positives,
        "{} deficient objects cannot explain {} false positives",
        reach.deficient_objects,
        report.false_positives
    );
}
