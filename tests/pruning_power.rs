//! Pruning-power accounting: the whole point of the paper is that the
//! graph-based algorithm evaluates far fewer distances than the scan
//! baselines. These tests pin that claim with the `DistanceCounter`
//! instrumentation rather than wall-clock (which is noisy in CI).

use dod::core::{nested_loop, DodParams, Engine, Query};
use dod::datasets::{calibrate_r, Family};
use dod::graph::MrpgParams;
use dod::metrics::DistanceCounter;

#[test]
fn graph_filtering_beats_nested_loop_on_distance_calls() {
    // n = 4000: large enough that the calibrated radius leaves typical
    // objects with far fewer than n/3 in-range neighbors. Below that the
    // randomized nested loop early-terminates after ~3k probes per object,
    // while any exact filter must spend at least k evaluations per inlier,
    // so no implementation could show 3x pruning on the smaller instance.
    let gen = Family::Sift.generate(4000, 13);
    let data = &gen.data;
    let k = 20;
    let r = calibrate_r(data, k, 0.01, 400, 3);
    let params = DodParams::new(r, k);

    // Build the graph outside the counted region (offline pre-processing,
    // exactly like the paper's cost model).
    let (graph, _) = dod::graph::mrpg::build(data, &MrpgParams::new(16));

    let counted = DistanceCounter::new(data);
    let nl = nested_loop::detect(&counted, &params, 0);
    let nl_calls = counted.calls();
    counted.reset();
    let engine = Engine::builder(&counted)
        .prebuilt_graph(graph)
        .build()
        .expect("engine");
    let graph_report = engine
        .query(Query::new(params.r, params.k).expect("valid"))
        .expect("query");
    let graph_calls = counted.calls();

    assert_eq!(nl.outliers, graph_report.outliers);
    assert!(
        graph_calls * 3 < nl_calls,
        "graph DOD used {graph_calls} distance calls vs nested loop {nl_calls}: \
         expected at least 3x pruning"
    );
}

#[test]
fn inlier_filtering_is_independent_of_n() {
    // The O(k) inlier argument: doubling n must not double the distance
    // calls spent on (the same) dense inliers. We compare calls-per-object
    // at two cardinalities; for a scan baseline the ratio would be ~2.
    let k = 10;
    let mut per_object = Vec::new();
    for n in [1500usize, 3000] {
        let gen = Family::Glove.generate(n, 5);
        let data = &gen.data;
        let r = calibrate_r(data, k, 0.01, 300, 1);
        let (graph, _) = dod::graph::mrpg::build(data, &MrpgParams::new(12));
        let counted = DistanceCounter::new(data);
        let engine = Engine::builder(&counted)
            .prebuilt_graph(graph)
            .build()
            .expect("engine");
        let _ = engine
            .query(Query::new(r, k).expect("valid"))
            .expect("query");
        per_object.push(counted.calls() as f64 / n as f64);
    }
    let growth = per_object[1] / per_object[0];
    assert!(
        growth < 1.6,
        "per-object filtering cost grew {growth:.2}x when n doubled \
         ({:.1} -> {:.1} calls/object); should be ~flat",
        per_object[0],
        per_object[1]
    );
}

#[test]
fn exact_shortcut_eliminates_outlier_verification_calls() {
    // §5.5: with exact K' lists covering the outliers, deciding them costs
    // zero distance evaluations. Compare full MRPG against MRPG-basic.
    let gen = Family::Words.generate(1500, 21);
    let data = &gen.data;
    let k = 10;
    let r = calibrate_r(data, k, 0.04, 300, 9);
    let params = DodParams::new(r, k);

    let mut full = MrpgParams::new(12);
    full.exact_m = Some(150);
    let (g_full, _) = dod::graph::mrpg::build(data, &full);
    let mut basic = MrpgParams::basic(12);
    basic.exact_m = Some(150);
    let (g_basic, _) = dod::graph::mrpg::build(data, &basic);

    let q = Query::new(params.r, params.k).expect("valid");
    let counted = DistanceCounter::new(data);
    let rep_full = Engine::builder(&counted)
        .prebuilt_graph(g_full)
        .build()
        .expect("engine")
        .query(q)
        .expect("query");
    let full_calls = counted.calls();
    counted.reset();
    let rep_basic = Engine::builder(&counted)
        .prebuilt_graph(g_basic)
        .build()
        .expect("engine")
        .query(q)
        .expect("query");
    let basic_calls = counted.calls();

    assert_eq!(rep_full.outliers, rep_basic.outliers);
    assert!(
        rep_full.decided_in_filter > 0,
        "shortcut never fired: exact lists missed every outlier"
    );
    assert!(
        full_calls < basic_calls,
        "full MRPG used {full_calls} calls, basic {basic_calls}: \
         the shortcut should reduce distance evaluations"
    );
}
