//! The `Engine` acceptance suite: for every `IndexSpec`, `engine.query`
//! must equal `nested_loop::detect` on arbitrary proptest datasets; the
//! save → load → re-query round trip preserves answers; and no input
//! reachable through the public query path can panic — every error is a
//! typed `DodError`.

use dod::core::nested_loop;
use dod::prelude::*;
use proptest::prelude::*;

/// Random 2-d points in a box.
fn points_strategy(max_n: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(
        (-50.0f32..50.0, -50.0f32..50.0).prop_map(|(x, y)| vec![x, y]),
        2..max_n,
    )
}

/// Every index spec the engine supports, smallest-degree variants.
fn all_specs(degree: usize) -> Vec<IndexSpec> {
    vec![
        IndexSpec::Mrpg(MrpgParams::new(degree)),
        IndexSpec::Nsw { degree },
        IndexSpec::KGraph { degree },
        IndexSpec::VpTree,
        IndexSpec::None,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_index_spec_matches_nested_loop(
        rows in points_strategy(110),
        r in 0.0f64..60.0,
        k in 1usize..8,
        seed in 0u64..500,
    ) {
        let data = VectorSet::from_rows(&rows, L2);
        let truth = nested_loop::detect(&data, &DodParams::new(r, k), seed).outliers;
        let q = Query::new(r, k).expect("valid query");
        for spec in all_specs(5) {
            let name = format!("{spec:?}");
            let engine = Engine::builder(&data)
                .index(spec)
                .seed(seed)
                .build()
                .expect("build");
            prop_assert_eq!(
                &engine.query(q).expect("query").outliers, &truth,
                "{} disagrees with the definition", name
            );
        }
    }

    #[test]
    fn save_load_requery_round_trips(
        rows in points_strategy(90),
        r in 0.5f64..40.0,
        k in 1usize..6,
    ) {
        let data = VectorSet::from_rows(&rows, L2);
        let q = Query::new(r, k).expect("valid query");
        for spec in all_specs(4) {
            let name = format!("{spec:?}");
            let engine = Engine::builder(&data).index(spec).build().expect("build");
            let want = engine.query(q).expect("query");
            let mut bytes = Vec::new();
            engine.save(&mut bytes).expect("save");
            let loaded = Engine::load(&data, &bytes[..]).expect("load");
            let got = loaded.query(q).expect("query");
            prop_assert_eq!(&got.outliers, &want.outliers, "{}", name.clone());
            prop_assert_eq!(got.candidates, want.candidates, "{}", name.clone());
            prop_assert_eq!(got.decided_in_filter, want.decided_in_filter, "{}", name);
        }
    }
}

#[test]
fn the_query_path_cannot_panic_on_bad_input() {
    // Input errors surface as DodError at the earliest boundary...
    assert!(matches!(
        Query::new(-1.0, 3),
        Err(DodError::InvalidRadius { .. })
    ));
    assert!(matches!(
        Query::new(f64::NAN, 3),
        Err(DodError::InvalidRadius { .. })
    ));
    assert!(matches!(
        Query::new(f64::INFINITY, 3),
        Err(DodError::InvalidRadius { .. })
    ));

    // ...and everything a valid Query can express is served without
    // panicking, across every spec and degenerate dataset shape.
    let shapes: Vec<VectorSet<L2>> = vec![
        VectorSet::from_rows(&[], L2),
        VectorSet::from_rows(&[vec![1.0, 1.0]], L2),
        VectorSet::from_rows(&vec![vec![2.0f32, 2.0]; 12], L2),
    ];
    for data in &shapes {
        for spec in all_specs(3) {
            let engine = Engine::builder(data).index(spec).build().expect("build");
            for (r, k) in [(0.0, 0), (0.0, 1), (1e18, 5), (f64::MAX, 1)] {
                let q = Query::new(r, k).expect("valid query");
                let report = engine.query(q).expect("query must not fail");
                assert!(report.outliers.len() <= data.len());
            }
        }
    }
}

#[test]
fn engine_errors_are_typed_not_panics() {
    let data = VectorSet::from_rows(&vec![vec![0.0f32, 0.0]; 30], L2);

    // Unusable specs fail at build.
    assert!(matches!(
        Engine::builder(&data)
            .index(IndexSpec::KGraph { degree: 0 })
            .build(),
        Err(DodError::InvalidSpec { .. })
    ));

    // A prebuilt graph over the wrong cardinality fails at build.
    let other = VectorSet::from_rows(&vec![vec![0.0f32, 0.0]; 10], L2);
    let (g, _) = dod::graph::mrpg::build(&other, &MrpgParams::new(3));
    assert!(matches!(
        Engine::builder(&data).prebuilt_graph(g).build(),
        Err(DodError::SizeMismatch {
            index: 10,
            data: 30
        })
    ));

    // Loading against the wrong dataset fails on the embedded checksum
    // (before any size check); corrupt bytes fail with an
    // offset-carrying Corrupt.
    let engine = Engine::builder(&data)
        .index(IndexSpec::Mrpg(MrpgParams::new(3)))
        .build()
        .expect("build");
    let mut bytes = Vec::new();
    engine.save(&mut bytes).expect("save");
    assert!(matches!(
        Engine::load(&other, &bytes[..]),
        Err(DodError::Corrupt { .. })
    ));
    match Engine::load(&data, &bytes[..bytes.len() / 2]) {
        Err(DodError::Corrupt { offset, .. }) => assert!(offset <= bytes.len()),
        Err(e) => panic!("expected Corrupt, got {e}"),
        Ok(_) => panic!("truncated engine accepted"),
    }
}

#[test]
fn batch_and_stream_share_one_result_shape() {
    // The unifying claim of the API: a streaming window and a batch engine
    // over the same points produce the same OutlierReport content.
    let mut det = StreamDetector::open(
        VectorSpace::new(L2, 1),
        Query::new(0.75, 2).expect("valid"),
        WindowSpec::Count(16),
        Backend::Exhaustive,
    )
    .expect("open");
    for i in 0..24 {
        det.insert(vec![(i % 5) as f32 * 0.5]);
    }
    det.insert(vec![100.0]);
    let stream_report: OutlierReport = det.report();

    let batch_report = Engine::builder(det.window_view())
        .index(IndexSpec::None)
        .build()
        .expect("build")
        .query(Query::new(0.75, 2).expect("valid"))
        .expect("query");
    assert_eq!(stream_report.outliers, batch_report.outliers);
    assert!(!stream_report.outliers.is_empty());
}
