//! Workspace smoke test: the `dod::prelude` quickstart path, end to end.
//!
//! Everything here goes through the facade crate's public API the way the
//! crate-level docs tell a new user to — generate a small Gaussian blob
//! set, build an `Engine` offline, answer one `(r, k)` query online, and
//! check the answer against the brute-force definition. If this fails,
//! the README quickstart is broken no matter what the inner crates say.

use dod::core::nested_loop;
use dod::datasets::GaussianMixture;
use dod::prelude::*;

#[test]
fn prelude_quickstart_agrees_with_nested_loop() {
    // Small Gaussian blob set: 3 clusters in 4-d with a sparse tail, via
    // the datasets crate's generator (the facade re-export).
    let gen = GaussianMixture {
        clusters: 3,
        tail_fraction: 0.02,
        ..GaussianMixture::new(400, 4)
    };
    let data = VectorSet::from_flat(gen.generate(7), 4, L2);
    assert_eq!(data.len(), 400);

    // Offline: build the engine (MRPG index) once.
    let engine = Engine::builder(data)
        .index(IndexSpec::Mrpg(MrpgParams::new(8)))
        .build()
        .expect("engine build");
    let graph = engine.graph().expect("MRPG engines are graph-backed");
    assert_eq!(graph.node_count(), engine.len());
    assert_eq!(graph.connected_components(), 1);

    // Online: one (r, k) query through the prelude types.
    let query = Query::new(1.5, 10).expect("valid query");
    let report: OutlierReport = engine.query(query).expect("query");

    // Exactness: agreement with the nested-loop ground truth.
    let truth = nested_loop::detect(engine.data(), &DodParams::new(1.5, 10), 0);
    assert_eq!(report.outliers, truth.outliers);

    // The planted sparse tail should make the query non-degenerate: some
    // outliers exist, and not everything is an outlier.
    assert!(!report.outliers.is_empty(), "query found no outliers");
    assert!(report.outliers.len() < engine.len() / 2, "query degenerate");
}

#[test]
fn prelude_exposes_every_documented_entry_point() {
    // Compile-time contract: the names the crate docs promise are all
    // importable from the prelude (plus a couple of spot checks that the
    // types actually connect to each other).
    let data = VectorSet::from_rows(&[vec![0.0f32, 0.0], vec![3.0, 4.0]], L2);
    assert!((data.dist(0, 1) - 5.0).abs() < 1e-9);

    let strings = StringSet::new(["abc", "abd"]);
    assert!((strings.dist(0, 1) - 1.0).abs() < 1e-9);

    // r below the edit distance of 1: both strings are neighborless, so
    // with k = 1 both are outliers.
    let params = DodParams::new(0.5, 1).with_threads(2);
    let result: OutlierReport = nested_loop::detect(&strings, &params, 0);
    assert_eq!(result.outliers.len(), 2);

    // The engine path reaches the same answer through the typed query.
    let engine = Engine::builder(&strings)
        .index(IndexSpec::None)
        .build()
        .expect("engine");
    let report = engine
        .query(Query::new(0.5, 1).expect("valid"))
        .expect("query");
    assert_eq!(report.outliers.len(), 2);

    // Errors are one enum, whatever layer raised them.
    let err: DodError = Query::new(f64::NAN, 1).unwrap_err();
    assert!(matches!(err, DodError::InvalidRadius { .. }));

    let _kind: GraphKind = GraphKind::Mrpg;
    let _strategy: VerifyStrategy = VerifyStrategy::Auto;
    let _spec: WindowSpec = WindowSpec::Count(8);
}
