//! End-to-end exactness: every algorithm must return the identical outlier
//! set on every dataset family of the paper's evaluation (Table 1), with
//! the nested loop as ground truth. Everything indexed runs through the
//! `Engine` front door.

use dod::core::{dolphin, nested_loop, snif, DodParams, Engine, IndexSpec, Query, VerifyStrategy};
use dod::datasets::{calibrate_r, Family};
use dod::graph::MrpgParams;
use dod::metrics::Dataset;

/// Family-sized test instance: smaller for the expensive metrics.
fn test_n(f: Family) -> usize {
    match f {
        Family::Mnist => 250,
        Family::Words => 400,
        _ => 600,
    }
}

fn check_family(family: Family) {
    let n = test_n(family);
    let gen = family.generate(n, 7);
    let data = &gen.data;
    let k = family.default_k().min(n / 10);
    let r = calibrate_r(data, k, family.target_outlier_ratio().max(0.01), 200, 5);
    let params = DodParams::new(r, k).with_threads(2);
    let q = Query::new(r, k)
        .expect("calibrated query is valid")
        .with_threads(2);

    let truth = nested_loop::detect(data, &params, 0).outliers;
    assert!(
        !truth.is_empty(),
        "{family}: the calibrated query found no outliers — test is vacuous"
    );
    assert!(
        truth.len() < n / 2,
        "{family}: too many outliers ({}) for a sane calibration",
        truth.len()
    );

    // Baselines.
    assert_eq!(
        snif::detect(data, &params, 3).outliers,
        truth,
        "{family}: SNIF disagrees"
    );
    assert_eq!(
        dolphin::detect(data, &params, 3).outliers,
        truth,
        "{family}: DOLPHIN disagrees"
    );

    // Every Engine index spec, one loop.
    let degree = 10;
    let mut basic = MrpgParams::basic(degree);
    basic.threads = 2;
    let specs: Vec<IndexSpec> = vec![
        IndexSpec::None,
        IndexSpec::VpTree,
        IndexSpec::Nsw { degree },
        IndexSpec::KGraph { degree },
        IndexSpec::Mrpg(basic),
    ];
    for spec in specs {
        let name = format!("{spec:?}");
        let engine = Engine::builder(data)
            .index(spec)
            .seed(1)
            .build()
            .unwrap_or_else(|e| panic!("{family}: {name} failed to build: {e}"));
        assert_eq!(
            engine.query(q).expect("query").outliers,
            truth,
            "{family}: {name} disagrees"
        );
    }

    // Full MRPG across every verification strategy.
    let mut fp = MrpgParams::new(degree);
    fp.threads = 2;
    for verify in [
        VerifyStrategy::Auto,
        VerifyStrategy::Linear,
        VerifyStrategy::VpTree,
    ] {
        let engine = Engine::builder(data)
            .index(IndexSpec::Mrpg(fp.clone()))
            .verify(verify)
            .build()
            .expect("mrpg engine");
        assert_eq!(
            engine.query(q).expect("query").outliers,
            truth,
            "{family}: MRPG with {verify:?} verification disagrees"
        );
    }
}

#[test]
fn deep_like_l2() {
    check_family(Family::Deep);
}

#[test]
fn glove_like_angular() {
    check_family(Family::Glove);
}

#[test]
fn hepmass_like_l1() {
    check_family(Family::Hepmass);
}

#[test]
fn mnist_like_l4() {
    check_family(Family::Mnist);
}

#[test]
fn pamap2_like_l2_bounded() {
    check_family(Family::Pamap2);
}

#[test]
fn sift_like_l2() {
    check_family(Family::Sift);
}

#[test]
fn words_edit_distance() {
    check_family(Family::Words);
}

#[test]
fn filtering_has_no_false_negatives() {
    // Lemma 1 at system level: the candidate set plus shortcut decisions
    // must cover every true outlier, for every graph kind.
    let gen = Family::Sift.generate(500, 9);
    let data = &gen.data;
    let k = 10;
    let r = calibrate_r(data, k, 0.02, 200, 1);
    let params = DodParams::new(r, k);
    let q = Query::new(r, k).expect("valid query");
    let truth = nested_loop::detect(data, &params, 0).outliers;

    for spec in [
        IndexSpec::Nsw { degree: 8 },
        IndexSpec::KGraph { degree: 8 },
        IndexSpec::Mrpg(MrpgParams::new(8)),
    ] {
        let engine = Engine::builder(data).index(spec).build().expect("engine");
        let report = engine.query(q).expect("query");
        let name = engine.index_name();
        assert_eq!(report.outliers, truth, "{name} missed outliers");
        // Every outlier is either verified (a candidate) or shortcut-decided.
        assert!(
            report.candidates + report.decided_in_filter >= truth.len(),
            "{name}: candidates cannot cover the outliers"
        );
    }
}

#[test]
fn subset_views_detect_like_materialized_subsets() {
    // The sampling-rate experiments rely on Subset views behaving exactly
    // like standalone datasets.
    let gen = Family::Hepmass.generate(400, 3);
    let ids: Vec<u32> = (0..400).filter(|i| i % 2 == 0).collect();
    let view = dod::metrics::Subset::new(&gen.data, ids);
    assert_eq!(view.len(), 200);
    let params = DodParams::new(5.0, 3);
    let a = nested_loop::detect(&view, &params, 0).outliers;
    let vp = Engine::builder(&view)
        .index(IndexSpec::VpTree)
        .build()
        .expect("engine");
    assert_eq!(
        vp.query(Query::new(5.0, 3).expect("valid"))
            .expect("query")
            .outliers,
        a
    );
}
