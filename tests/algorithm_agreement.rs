//! End-to-end exactness: every algorithm must return the identical outlier
//! set on every dataset family of the paper's evaluation (Table 1), with
//! the nested loop as ground truth.

use dod::core::{dolphin, nested_loop, snif, DodParams, GraphDod, VerifyStrategy, VpTreeDod};
use dod::datasets::{calibrate_r, Family};
use dod::graph::MrpgParams;
use dod::metrics::Dataset;

/// Family-sized test instance: smaller for the expensive metrics.
fn test_n(f: Family) -> usize {
    match f {
        Family::Mnist => 250,
        Family::Words => 400,
        _ => 600,
    }
}

fn check_family(family: Family) {
    let n = test_n(family);
    let gen = family.generate(n, 7);
    let data = &gen.data;
    let k = family.default_k().min(n / 10);
    let r = calibrate_r(data, k, family.target_outlier_ratio().max(0.01), 200, 5);
    let params = DodParams::new(r, k).with_threads(2);

    let truth = nested_loop::detect(data, &params, 0).outliers;
    assert!(
        !truth.is_empty(),
        "{family}: the calibrated query found no outliers — test is vacuous"
    );
    assert!(
        truth.len() < n / 2,
        "{family}: too many outliers ({}) for a sane calibration",
        truth.len()
    );

    // Baselines.
    assert_eq!(
        snif::detect(data, &params, 3).outliers,
        truth,
        "{family}: SNIF disagrees"
    );
    assert_eq!(
        dolphin::detect(data, &params, 3).outliers,
        truth,
        "{family}: DOLPHIN disagrees"
    );
    let vp = VpTreeDod::build(data, 1);
    assert_eq!(
        vp.detect(data, &params).outliers,
        truth,
        "{family}: VP-tree disagrees"
    );

    // Proximity-graph algorithms, all four graphs.
    let degree = 10;
    let nsw = dod::graph::mrpg::build_nsw(data, degree, 1);
    assert_eq!(
        GraphDod::new(&nsw).detect(data, &params).outliers,
        truth,
        "{family}: NSW disagrees"
    );
    let kg = dod::graph::mrpg::build_kgraph(data, degree, 2, 1);
    assert_eq!(
        GraphDod::new(&kg).detect(data, &params).outliers,
        truth,
        "{family}: KGraph disagrees"
    );
    let mut bp = MrpgParams::basic(degree);
    bp.threads = 2;
    let (basic, _) = dod::graph::mrpg::build(data, &bp);
    assert_eq!(
        GraphDod::new(&basic).detect(data, &params).outliers,
        truth,
        "{family}: MRPG-basic disagrees"
    );
    let mut fp = MrpgParams::new(degree);
    fp.threads = 2;
    let (mrpg, _) = dod::graph::mrpg::build(data, &fp);
    for verify in [
        VerifyStrategy::Auto,
        VerifyStrategy::Linear,
        VerifyStrategy::VpTree,
    ] {
        assert_eq!(
            GraphDod::new(&mrpg)
                .with_verify(verify)
                .detect(data, &params)
                .outliers,
            truth,
            "{family}: MRPG with {verify:?} verification disagrees"
        );
    }
}

#[test]
fn deep_like_l2() {
    check_family(Family::Deep);
}

#[test]
fn glove_like_angular() {
    check_family(Family::Glove);
}

#[test]
fn hepmass_like_l1() {
    check_family(Family::Hepmass);
}

#[test]
fn mnist_like_l4() {
    check_family(Family::Mnist);
}

#[test]
fn pamap2_like_l2_bounded() {
    check_family(Family::Pamap2);
}

#[test]
fn sift_like_l2() {
    check_family(Family::Sift);
}

#[test]
fn words_edit_distance() {
    check_family(Family::Words);
}

#[test]
fn filtering_has_no_false_negatives() {
    // Lemma 1 at system level: the candidate set plus shortcut decisions
    // must cover every true outlier, for every graph kind.
    let gen = Family::Sift.generate(500, 9);
    let data = &gen.data;
    let k = 10;
    let r = calibrate_r(data, k, 0.02, 200, 1);
    let params = DodParams::new(r, k);
    let truth = nested_loop::detect(data, &params, 0).outliers;

    for g in [
        dod::graph::mrpg::build_nsw(data, 8, 0),
        dod::graph::mrpg::build_kgraph(data, 8, 1, 0),
        dod::graph::mrpg::build(data, &MrpgParams::new(8)).0,
    ] {
        let report = GraphDod::new(&g).detect(data, &params);
        assert_eq!(report.outliers, truth, "{} missed outliers", g.kind);
        // Every outlier is either verified (a candidate) or shortcut-decided.
        assert!(
            report.candidates + report.decided_in_filter >= truth.len(),
            "{}: candidates cannot cover the outliers",
            g.kind
        );
    }
}

#[test]
fn subset_views_detect_like_materialized_subsets() {
    // The sampling-rate experiments rely on Subset views behaving exactly
    // like standalone datasets.
    let gen = Family::Hepmass.generate(400, 3);
    let ids: Vec<u32> = (0..400).filter(|i| i % 2 == 0).collect();
    let view = dod::metrics::Subset::new(&gen.data, ids);
    assert_eq!(view.len(), 200);
    let params = DodParams::new(5.0, 3);
    let a = nested_loop::detect(&view, &params, 0).outliers;
    let vp = VpTreeDod::build(&view, 0);
    assert_eq!(vp.detect(&view, &params).outliers, a);
}
