//! Cross-crate persistence: a serialized-then-reloaded index must answer
//! every query identically to the in-memory original, across dataset
//! families and graph kinds — at both layers: the raw graph codec and the
//! `Engine::save`/`Engine::load` session format above it.

use dod::core::{Engine, Query};
use dod::datasets::{calibrate_r, Family};
use dod::graph::{mrpg, serialize, MrpgParams};

#[test]
fn reloaded_graphs_answer_identically() {
    for family in [Family::Glove, Family::Words] {
        let gen = family.generate(800, 3);
        let data = &gen.data;
        let k = 8;
        let r = calibrate_r(data, k, 0.02, 300, 1);
        let q = Query::new(r, k).expect("valid query");

        for graph in [
            mrpg::build(data, &MrpgParams::new(8)).0,
            mrpg::build(data, &MrpgParams::basic(8)).0,
            mrpg::build_kgraph(data, 8, 1, 0),
            mrpg::build_nsw(data, 8, 0),
        ] {
            let kind = graph.kind;
            let bytes = serialize::to_bytes(&graph);
            let loaded = serialize::from_bytes(&bytes).expect("round trip");
            let fresh = Engine::builder(data)
                .prebuilt_graph(graph)
                .build()
                .expect("engine");
            let warm = Engine::builder(data)
                .prebuilt_graph(loaded)
                .build()
                .expect("engine");
            let a = fresh.query(q).expect("query");
            let b = warm.query(q).expect("query");
            assert_eq!(a.outliers, b.outliers, "{family}/{kind}");
            assert_eq!(a.candidates, b.candidates, "{family}/{kind}");
            assert_eq!(
                a.decided_in_filter, b.decided_in_filter,
                "{family}/{kind}: the exact-K' shortcut state must survive"
            );
        }
    }
}

#[test]
fn engine_round_trip_preserves_answers_across_families() {
    // One level above the raw codec: the whole engine session (index +
    // verify strategy + thread default + seed) survives save/load.
    for family in [Family::Glove, Family::Words] {
        let gen = family.generate(600, 4);
        let data = &gen.data;
        let k = 8;
        let r = calibrate_r(data, k, 0.02, 300, 1);
        let q = Query::new(r, k).expect("valid query");

        let engine = Engine::builder(data)
            .index(dod::core::IndexSpec::Mrpg(MrpgParams::new(8)))
            .threads(2)
            .seed(5)
            .build()
            .expect("engine");
        let want = engine.query(q).expect("query");

        let mut bytes = Vec::new();
        engine.save(&mut bytes).expect("save");
        let loaded = Engine::load(data, &bytes[..]).expect("load");
        let got = loaded.query(q).expect("query");
        assert_eq!(got.outliers, want.outliers, "{family}");
        assert_eq!(got.candidates, want.candidates, "{family}");
        assert_eq!(loaded.threads(), 2, "{family}");
        assert_eq!(loaded.seed(), 5, "{family}");
    }
}

#[test]
fn serialized_size_tracks_link_count() {
    let gen = Family::Sift.generate(500, 9);
    let (small, _) = mrpg::build(&gen.data, &MrpgParams::new(4));
    let (large, _) = mrpg::build(&gen.data, &MrpgParams::new(12));
    let small_bytes = serialize::to_bytes(&small).len();
    let large_bytes = serialize::to_bytes(&large).len();
    assert!(
        large_bytes > small_bytes,
        "K=12 graph ({large_bytes} B) should out-size K=4 ({small_bytes} B)"
    );
}
