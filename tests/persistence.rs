//! Cross-crate persistence test: a serialized-then-reloaded MRPG must
//! answer every query identically to the in-memory original, across
//! dataset families and graph kinds.

use dod::core::{DodParams, GraphDod};
use dod::datasets::{calibrate_r, Family};
use dod::graph::{mrpg, serialize, MrpgParams};

#[test]
fn reloaded_graphs_answer_identically() {
    for family in [Family::Glove, Family::Words] {
        let gen = family.generate(800, 3);
        let data = &gen.data;
        let k = 8;
        let r = calibrate_r(data, k, 0.02, 300, 1);
        let params = DodParams::new(r, k);

        for graph in [
            mrpg::build(data, &MrpgParams::new(8)).0,
            mrpg::build(data, &MrpgParams::basic(8)).0,
            mrpg::build_kgraph(data, 8, 1, 0),
            mrpg::build_nsw(data, 8, 0),
        ] {
            let bytes = serialize::to_bytes(&graph);
            let loaded = serialize::from_bytes(&bytes).expect("round trip");
            let a = GraphDod::new(&graph).detect(data, &params);
            let b = GraphDod::new(&loaded).detect(data, &params);
            assert_eq!(a.outliers, b.outliers, "{family}/{}", graph.kind);
            assert_eq!(a.candidates, b.candidates, "{family}/{}", graph.kind);
            assert_eq!(
                a.decided_in_filter, b.decided_in_filter,
                "{family}/{}: the exact-K' shortcut state must survive",
                graph.kind
            );
        }
    }
}

#[test]
fn serialized_size_tracks_link_count() {
    let gen = Family::Sift.generate(500, 9);
    let (small, _) = mrpg::build(&gen.data, &MrpgParams::new(4));
    let (large, _) = mrpg::build(&gen.data, &MrpgParams::new(12));
    let small_bytes = serialize::to_bytes(&small).len();
    let large_bytes = serialize::to_bytes(&large).len();
    assert!(
        large_bytes > small_bytes,
        "K=12 graph ({large_bytes} B) should out-size K=4 ({small_bytes} B)"
    );
}
