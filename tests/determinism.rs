//! Reproducibility guarantees: fixed seeds give identical datasets, graphs
//! and results, regardless of thread count. The experiment harness (and
//! anyone debugging a production incident) depends on this.

use dod::core::{Engine, Query};
use dod::datasets::Family;
use dod::graph::MrpgParams;
use dod::metrics::Dataset;

#[test]
fn dataset_generation_is_reproducible() {
    for family in Family::ALL {
        let a = family.generate(150, 99);
        let b = family.generate(150, 99);
        for i in (0..150).step_by(13) {
            for j in (0..150).step_by(17) {
                assert_eq!(
                    a.data.dist(i, j),
                    b.data.dist(i, j),
                    "{family}: dist({i},{j}) differs between runs"
                );
            }
        }
    }
}

#[test]
fn mrpg_build_is_reproducible_across_thread_counts() {
    let gen = Family::Glove.generate(400, 5);
    let build = |threads: usize| {
        let mut p = MrpgParams::new(8);
        p.seed = 21;
        p.threads = threads;
        dod::graph::mrpg::build(&gen.data, &p).0
    };
    let g1 = build(1);
    let g3 = build(3);
    assert_eq!(g1.adj, g3.adj);
    assert_eq!(g1.pivot, g3.pivot);
    assert_eq!(
        g1.exact.keys().collect::<std::collections::BTreeSet<_>>(),
        g3.exact.keys().collect::<std::collections::BTreeSet<_>>()
    );
}

#[test]
fn detection_reports_are_reproducible() {
    let gen = Family::Sift.generate(400, 8);
    let (g, _) = dod::graph::mrpg::build(&gen.data, &MrpgParams::new(8));
    let engine = Engine::builder(&gen.data)
        .prebuilt_graph(g)
        .build()
        .expect("engine");
    let q = Query::new(300.0, 10).expect("valid query");
    let a = engine.query(q).expect("query");
    let b = engine.query(q).expect("query");
    assert_eq!(a.outliers, b.outliers);
    assert_eq!(a.candidates, b.candidates);
    assert_eq!(a.false_positives, b.false_positives);
    assert_eq!(a.decided_in_filter, b.decided_in_filter);
}

#[test]
fn different_seeds_build_different_graphs() {
    // Sanity check that the seed actually reaches the RNGs.
    let gen = Family::Deep.generate(300, 4);
    let build = |seed: u64| {
        let mut p = MrpgParams::new(6);
        p.seed = seed;
        dod::graph::mrpg::build(&gen.data, &p).0
    };
    let a = build(1);
    let b = build(2);
    assert_ne!(a.adj, b.adj, "seeds 1 and 2 built identical graphs");
    // ... but both must give the same (exact) detection result.
    let q = Query::new(10.0, 8).expect("valid query");
    let ea = Engine::builder(&gen.data)
        .prebuilt_graph(a)
        .build()
        .expect("engine");
    let eb = Engine::builder(&gen.data)
        .prebuilt_graph(b)
        .build()
        .expect("engine");
    assert_eq!(
        ea.query(q).expect("query").outliers,
        eb.query(q).expect("query").outliers
    );
}
