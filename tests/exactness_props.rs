//! Property-based exactness: on arbitrary random instances and queries,
//! every algorithm agrees with the brute-force definition, and the
//! filtering phase never produces false negatives (Lemma 1).

use dod::core::{dolphin, nested_loop, snif, DodParams, Engine, IndexSpec, Query};
use dod::core::{greedy_count, TraversalBuffer};
use dod::graph::MrpgParams;
use dod::prelude::*;
use proptest::prelude::*;

/// Random 2-d points in a box, as flat pairs to keep shrinking cheap.
fn points_strategy(max_n: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(
        (-50.0f32..50.0, -50.0f32..50.0).prop_map(|(x, y)| vec![x, y]),
        2..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_algorithm_matches_the_definition(
        rows in points_strategy(120),
        r in 0.0f64..60.0,
        k in 1usize..8,
        seed in 0u64..1000,
    ) {
        let data = VectorSet::from_rows(&rows, L2);
        let n = data.len();
        // Ground truth straight from Definition 2.
        let truth: Vec<u32> = (0..n)
            .filter(|&p| {
                (0..n).filter(|&j| j != p && data.dist(p, j) <= r).count() < k
            })
            .map(|p| p as u32)
            .collect();

        let params = DodParams::new(r, k);
        let q = Query::new(r, k).expect("valid query");
        prop_assert_eq!(&nested_loop::detect(&data, &params, seed).outliers, &truth);
        prop_assert_eq!(&snif::detect(&data, &params, seed).outliers, &truth);
        prop_assert_eq!(&dolphin::detect(&data, &params, seed).outliers, &truth);

        for spec in [
            IndexSpec::VpTree,
            IndexSpec::Mrpg(MrpgParams::new(5)),
            IndexSpec::KGraph { degree: 5 },
        ] {
            let engine = Engine::builder(&data).index(spec).seed(seed).build().expect("engine");
            prop_assert_eq!(&engine.query(q).expect("query").outliers, &truth);
        }
    }

    #[test]
    fn greedy_count_is_a_lower_bound_lemma1(
        rows in points_strategy(100),
        r in 0.0f64..40.0,
    ) {
        let data = VectorSet::from_rows(&rows, L2);
        let n = data.len();
        let (g, _) = dod::graph::mrpg::build(&data, &MrpgParams::new(4));
        let mut buf = TraversalBuffer::new(n);
        for p in 0..n {
            let truth = (0..n).filter(|&j| j != p && data.dist(p, j) <= r).count();
            let counted = greedy_count(&g, &data, p, r, usize::MAX, &mut buf);
            prop_assert!(
                counted <= truth,
                "greedy overcounted at p={}: {} > {}", p, counted, truth
            );
        }
    }

    #[test]
    fn parallel_and_sequential_agree(
        rows in points_strategy(100),
        r in 0.0f64..40.0,
        k in 1usize..6,
    ) {
        let data = VectorSet::from_rows(&rows, L2);
        let engine = Engine::builder(&data)
            .index(IndexSpec::Mrpg(MrpgParams::new(4)))
            .build()
            .expect("engine");
        let q = Query::new(r, k).expect("valid query");
        let seq = engine.query(q).expect("query");
        let par = engine.query(q.with_threads(4)).expect("query");
        prop_assert_eq!(seq.outliers, par.outliers);
        prop_assert_eq!(seq.candidates, par.candidates);
    }

    #[test]
    fn outlier_sets_are_monotone_in_r_and_k(
        rows in points_strategy(80),
        r in 1.0f64..30.0,
        k in 2usize..6,
    ) {
        let data = VectorSet::from_rows(&rows, L2);
        let base = nested_loop::detect(&data, &DodParams::new(r, k), 0).outliers;
        // Growing r can only remove outliers.
        let wider = nested_loop::detect(&data, &DodParams::new(r * 1.5, k), 0).outliers;
        prop_assert!(wider.iter().all(|o| base.contains(o)));
        // Growing k can only add outliers.
        let stricter = nested_loop::detect(&data, &DodParams::new(r, k + 1), 0).outliers;
        prop_assert!(base.iter().all(|o| stricter.contains(o)));
    }

    #[test]
    fn mrpg_is_connected_on_random_data(rows in points_strategy(150)) {
        let data = VectorSet::from_rows(&rows, L2);
        let (g, _) = dod::graph::mrpg::build(&data, &MrpgParams::new(5));
        prop_assert_eq!(g.connected_components(), 1);
        g.assert_invariants();
    }

    #[test]
    fn strings_follow_the_same_contract(
        words in prop::collection::vec("[a-c]{1,8}", 3..40),
        r in 0.0f64..5.0,
        k in 1usize..4,
    ) {
        let data = StringSet::new(words.iter().map(String::as_str));
        let n = data.len();
        let truth: Vec<u32> = (0..n)
            .filter(|&p| {
                (0..n).filter(|&j| j != p && data.dist(p, j) <= r).count() < k
            })
            .map(|p| p as u32)
            .collect();
        let params = DodParams::new(r, k);
        prop_assert_eq!(&nested_loop::detect(&data, &params, 0).outliers, &truth);
        prop_assert_eq!(&snif::detect(&data, &params, 0).outliers, &truth);
        let engine = Engine::builder(&data)
            .index(IndexSpec::Mrpg(MrpgParams::new(4)))
            .build()
            .expect("engine");
        prop_assert_eq!(&engine.query(Query::new(r, k).expect("valid")).expect("query").outliers, &truth);
    }
}
