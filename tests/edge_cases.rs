//! Failure-injection and degenerate-input tests across every detector:
//! empty datasets, singletons, k = 0, k > n, r = 0, r = ∞-ish, duplicate
//! objects. Exactness must hold everywhere the problem is well-defined.

use dod::core::{dolphin, nested_loop, snif, DodParams};
use dod::prelude::*;

fn all_outlier_sets(data: &(impl Dataset + ?Sized), params: &DodParams) -> Vec<Vec<u32>> {
    let q = Query::new(params.r, params.k).expect("valid query");
    let mrpg = Engine::builder(&data)
        .index(IndexSpec::Mrpg(MrpgParams::new(4)))
        .build()
        .expect("mrpg engine");
    let vp = Engine::builder(&data)
        .index(IndexSpec::VpTree)
        .seed(3)
        .build()
        .expect("vptree engine");
    vec![
        nested_loop::detect(data, params, 0).outliers,
        snif::detect(data, params, 1).outliers,
        dolphin::detect(data, params, 2).outliers,
        vp.query(q).expect("vptree query").outliers,
        mrpg.query(q).expect("mrpg query").outliers,
    ]
}

fn assert_all_equal(data: &(impl Dataset + ?Sized), params: &DodParams, expect: &[u32]) {
    for (i, set) in all_outlier_sets(data, params).into_iter().enumerate() {
        assert_eq!(set, expect, "algorithm #{i} differs for {params:?}");
    }
}

#[test]
fn empty_dataset_has_no_outliers() {
    let data = VectorSet::from_rows(&[], L2);
    assert_all_equal(&data, &DodParams::new(1.0, 3), &[]);
}

#[test]
fn singleton_is_always_an_outlier_for_positive_k() {
    let data = VectorSet::from_rows(&[vec![1.0, 2.0]], L2);
    assert_all_equal(&data, &DodParams::new(10.0, 1), &[0]);
    assert_all_equal(&data, &DodParams::new(10.0, 0), &[]);
}

#[test]
fn k_zero_never_produces_outliers() {
    let data = VectorSet::from_rows(&[vec![0.0], vec![100.0], vec![-100.0]], L2);
    assert_all_equal(&data, &DodParams::new(0.1, 0), &[]);
}

#[test]
fn k_at_least_n_makes_everything_an_outlier() {
    let data = VectorSet::from_rows(&[vec![0.0], vec![0.1], vec![0.2]], L2);
    // Even with infinite-ish r, each object has at most 2 neighbors < k=3.
    assert_all_equal(&data, &DodParams::new(1e18, 3), &[0, 1, 2]);
}

#[test]
fn r_zero_counts_only_exact_duplicates() {
    let mut rows = vec![vec![5.0f32]; 10];
    rows.push(vec![6.0]);
    let data = VectorSet::from_rows(&rows, L2);
    // Duplicates have 9 zero-distance neighbors; the singleton has none.
    assert_all_equal(&data, &DodParams::new(0.0, 2), &[10]);
}

#[test]
fn all_duplicates_no_outliers_even_at_r_zero() {
    let data = VectorSet::from_rows(&vec![vec![3.0f32, 3.0]; 25], L2);
    assert_all_equal(&data, &DodParams::new(0.0, 5), &[]);
}

#[test]
fn two_points_mutual_neighbors() {
    let data = VectorSet::from_rows(&[vec![0.0], vec![1.0]], L2);
    assert_all_equal(&data, &DodParams::new(1.0, 1), &[]);
    assert_all_equal(&data, &DodParams::new(0.5, 1), &[0, 1]);
}

#[test]
fn boundary_r_is_inclusive_everywhere() {
    // Neighbors at distance exactly r must count for every algorithm
    // (Definition 1 uses <=). Integer coordinates make distances exact.
    let data = VectorSet::from_rows(
        &[vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![10.0]],
        L2,
    );
    // r = 1.0: ids 0..=3 form a chain, each with >= 1 neighbor; 4 isolated.
    assert_all_equal(&data, &DodParams::new(1.0, 1), &[4]);
}

#[test]
fn string_edge_cases() {
    let data = StringSet::new(["", "a", "ab", "abcdefghij"]);
    // r=1, k=1: "" ~ "a" ~ "ab" chain; the long string is isolated.
    assert_all_equal(&data, &DodParams::new(1.0, 1), &[3]);
}

#[test]
fn negative_r_panics_on_the_legacy_entry_and_errors_on_the_engine() {
    let data = VectorSet::from_rows(&[vec![0.0], vec![1.0]], L2);
    // Legacy free function: documented panic.
    let params = DodParams::new(-1.0, 1);
    let r = std::panic::catch_unwind(|| nested_loop::detect(&data, &params, 0));
    assert!(r.is_err());
    // Engine path: the same input never reaches a panic — construction of
    // the Query is the validation boundary.
    assert!(matches!(
        Query::new(-1.0, 1),
        Err(DodError::InvalidRadius { .. })
    ));
}

#[test]
fn huge_k_on_small_graph_degree() {
    // k far above the graph degree K: filtering can't confirm inliers from
    // 1-hop alone, multi-hop traversal and verification must cope.
    let rows: Vec<Vec<f32>> = (0..200)
        .map(|i| vec![(i % 20) as f32 * 0.01, (i / 20) as f32 * 0.01])
        .collect();
    let data = VectorSet::from_rows(&rows, L2);
    let params = DodParams::new(0.05, 50);
    let truth = nested_loop::detect(&data, &params, 0).outliers;
    let engine = Engine::builder(&data)
        .index(IndexSpec::Mrpg(MrpgParams::new(4)))
        .build()
        .expect("engine");
    let q = Query::new(0.05, 50).expect("valid query");
    assert_eq!(engine.query(q).expect("query").outliers, truth);
}

#[test]
fn detection_with_threads_beyond_object_count() {
    let data = VectorSet::from_rows(&[vec![0.0], vec![1.0], vec![50.0]], L2);
    let params = DodParams::new(2.0, 1).with_threads(16);
    assert_all_equal(&data, &params, &[2]);
    // The engine honors a per-query override beyond n just as gracefully.
    let engine = Engine::builder(&data)
        .index(IndexSpec::None)
        .build()
        .expect("engine");
    let q = Query::new(2.0, 1).expect("valid").with_threads(16);
    assert_eq!(engine.query(q).expect("query").outliers, vec![2]);
}
