//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derives from the
//! vendored `serde_derive` so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(...)]` annotations compile without a crate registry. No
//! serialization machinery is provided — nothing in the workspace invokes
//! serde at runtime today. Swap for the real crate via
//! `[workspace.dependencies]` once a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};
