//! Case scheduling, config and failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases a property runs, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs violated an assumption; try another case.
    Reject,
    /// The property failed on this case.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection (assumption not met).
    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "input rejected by prop_assume"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Drives `case` until `config.cases` cases pass; panics on the first
/// failure, reporting the deterministic case seed.
///
/// Generation is seeded from a hash of the test name and the case index,
/// so reruns reproduce the same inputs without any persisted state.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let name_tag = fnv1a(name.as_bytes());
    let max_rejects = (config.cases as u64) * 64 + 1024;
    let mut rejects = 0u64;
    let mut passed = 0u32;
    let mut case_idx = 0u64;
    while passed < config.cases {
        let seed = name_tag ^ case_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "{name}: gave up after {rejects} prop_assume rejections \
                     ({passed}/{} cases passed)",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case #{case_idx} (seed {seed:#x}): {msg}");
            }
        }
        case_idx += 1;
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
