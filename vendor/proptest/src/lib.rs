//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API that this workspace's property
//! suites use, with random (non-shrinking) case generation on top of the
//! vendored `rand`:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`strategy::Strategy`] with `prop_map`, implemented for primitive
//!   ranges, 2-/3-tuples of strategies, and `&str` character-class
//!   patterns of the form `"[a-z]{lo,hi}"`;
//! * [`collection::vec`](prop::collection::vec) with `usize` or
//!   `Range<usize>` sizes;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`] and
//!   [`test_runner::TestCaseError`].
//!
//! Failing cases report the case seed so a failure can be replayed by
//! rerunning the test binary (generation is deterministic per case
//! index). There is no shrinking: a failure reports the raw case.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs property-test functions over generated inputs.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(0.0f32..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    let mut case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs == *rhs,
                    "assertion failed: `{:?}` != `{:?}`", lhs, rhs
                );
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {
        match (&$lhs, &$rhs) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs == *rhs,
                    "assertion failed: `{:?}` != `{:?}`: {}", lhs, rhs, format!($($fmt)*)
                );
            }
        }
    };
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (lhs, rhs) => {
                $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
            }
        }
    };
}

/// Discards the current case (does not count toward the case target)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
