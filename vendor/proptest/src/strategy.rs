//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no shrinking and no `ValueTree`; a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// `&str` patterns act as string strategies, as in real proptest. Only
/// the character-class-with-counted-repeat form `"[a-z]{lo,hi}"` (plus
/// `{n}` exact counts) is supported — the only form the workspace uses.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let pat = CharClassPattern::parse(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?} (vendored proptest)"));
        pat.generate(rng)
    }
}

#[derive(Debug)]
struct CharClassPattern {
    chars: Vec<char>,
    lo: usize,
    hi: usize, // inclusive
}

impl CharClassPattern {
    /// Parses `[<class>]{lo,hi}`, `[<class>]{n}`, or a bare `[<class>]`
    /// (one repetition), where `<class>` is literal chars and `a-z` ranges.
    fn parse(pattern: &str) -> Option<Self> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;

        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (a, b) = (cs[i], cs[i + 2]);
                if a > b {
                    return None;
                }
                chars.extend((a..=b).filter(|c| c.is_ascii()));
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }

        let (lo, hi) = if rest.is_empty() {
            (1, 1)
        } else {
            let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
            match counts.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
                None => {
                    let n = counts.trim().parse().ok()?;
                    (n, n)
                }
            }
        };
        if lo > hi {
            return None;
        }
        Some(CharClassPattern { chars, lo, hi })
    }

    fn generate(&self, rng: &mut StdRng) -> String {
        let len = rng.gen_range(self.lo..=self.hi);
        (0..len)
            .map(|_| self.chars[rng.gen_range(0..self.chars.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn parses_counted_char_classes() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let s = "[a-d]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
        let s = "[xyz]{3}".generate(&mut rng);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn rejects_unsupported_patterns() {
        assert!(CharClassPattern::parse("hello").is_none());
        assert!(CharClassPattern::parse("[]{1,2}").is_none());
        assert!(CharClassPattern::parse("[a-z]{5,2}").is_none());
    }

    #[test]
    fn tuples_and_maps_compose() {
        let strat = (0.0f32..1.0, 0.0f32..1.0).prop_map(|(x, y)| vec![x, y]);
        let mut rng = StdRng::seed_from_u64(1);
        let v = strat.generate(&mut rng);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
    }
}
