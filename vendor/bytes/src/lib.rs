//! Offline stand-in for the `bytes` crate.
//!
//! Implements the little-endian read/write subset that `dod_graph`'s
//! binary persistence uses: [`BytesMut`] with [`BufMut`] appends and
//! `freeze()`, immutable [`Bytes`] that derefs to `&[u8]`, and [`Buf`]
//! cursor reads over `&[u8]`. Backed by plain `Vec<u8>` — no refcounted
//! slices, which the workspace never relies on.

use std::ops::Deref;

/// Immutable byte buffer (here: an owned `Vec<u8>` behind a deref).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// Growable byte buffer accepting [`BufMut`] appends.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential little-endian reads from the front of a buffer.
///
/// Each `get_*` consumes its bytes; panics on underflow like the real
/// crate (callers bounds-check with `remaining`/`len` first).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes off the front.
    fn copy_front(&mut self, n: usize) -> &[u8];

    /// Discards `n` bytes off the front.
    fn advance(&mut self, n: usize) {
        self.copy_front(n);
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_front(1)[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_front(4).try_into().unwrap())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_front(8).try_into().unwrap())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.copy_front(8).try_into().unwrap())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_front(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Sequential little-endian appends to the back of a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"DODG");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_f64_le(-1.25);
        let frozen = w.freeze();

        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 4 + 1 + 4 + 8 + 8);
        assert_eq!(&r[..4], b"DODG");
        r.advance(4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), -1.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_equality_and_to_vec() {
        let mut w = BytesMut::with_capacity(4);
        w.put_u32_le(5);
        let a = w.clone().freeze();
        let b = w.freeze();
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), vec![5, 0, 0, 0]);
    }
}
