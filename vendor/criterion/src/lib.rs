//! Offline stand-in for `criterion`.
//!
//! Supports the subset the bench suites use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with a simple mean-of-samples timer instead of criterion's
//! statistical machinery. Good enough to compile under `cargo bench
//! --no-run` in CI and to print comparable wall-clock numbers locally.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\n== {} ==", name.into());
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 20, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints the mean per-iteration wall clock.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Ends the group (printing only; nothing to flush in the stand-in).
    pub fn finish(self) {}
}

fn run_one<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        sample_size,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        println!(
            "{name:<28} {:>12.3} ms/iter ({} iters)",
            per_iter * 1e3,
            b.iters
        );
    } else {
        println!("{name:<28} (no iterations)");
    }
}

/// Runs and times the benchmark body.
pub struct Bencher {
    sample_size: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `routine` once to warm up, then `sample_size` timed times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.sample_size as u64;
    }

    /// Like [`Bencher::iter`], but each timed call consumes a fresh input
    /// from `setup`; setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += self.sample_size as u64;
    }
}

/// How many inputs to prepare per batch. The stand-in times one input per
/// call regardless, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Collects benchmark functions into one runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
