//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]`; nothing serializes through serde yet (graph persistence
//! uses a hand-rolled binary format). These derives therefore expand to
//! nothing, which keeps every annotation compiling until the real crates
//! can be pulled from a registry.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` annotation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` annotation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
