//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no access to a crate
//! registry, so the workspace vendors the narrow slice of `rand` it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over primitive ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a fixed seed, which is all the
//! algorithms and tests rely on (they never pin exact stream values).
//!
//! Swapping back to the real crate is a one-line change in the root
//! `[workspace.dependencies]`; every call site uses the rand 0.8 API.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s. Mirrors `rand_core::RngCore` closely enough
/// for the workspace's usage.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range, like the
    /// real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts a `u64` to a uniform `f64` in `[0, 1)` using the high 53 bits.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly. Implemented for half-open and
/// inclusive ranges of the primitive types the workspace uses.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's `StdRng`;
    /// same API, different — but still high-quality — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Slice shuffling (the only `SliceRandom` method the workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle, deterministic for a fixed generator state.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let c = rng.gen_range(0..=255u8);
            let _ = c; // full domain, nothing to check beyond type
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1000 {
            match rng.gen_range(0..=3u8) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice fully sorted");
    }
}
