#!/usr/bin/env sh
# CI gate: the README's Prometheus metrics reference table must list
# exactly the `dod_*` series rendered by crates/server/src/prom.rs.
# A series added to one side but not the other fails the build, so the
# scrape surface and its documentation cannot drift apart silently.
set -eu
cd "$(dirname "$0")/.."

prom_rs=crates/server/src/prom.rs
readme=README.md

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Every series name appears in prom.rs as an exact string literal
# (`"dod_pool_workers",` in its header() call). Literals carrying label
# interpolation or sample formatting ("dod_x{{..." / "dod_x {}") never
# match the closing quote, so this extracts names and nothing else.
grep -o '"dod_[a-z0-9_]*"' "$prom_rs" \
    | tr -d '"' \
    | sort -u >"$tmpdir/code"

# `| `dod_pool_workers` | gauge | ... |` -> `dod_pool_workers`
sed -n '/<!-- metrics-table:begin -->/,/<!-- metrics-table:end -->/p' "$readme" \
    | sed -n 's/^| `\(dod_[a-z0-9_]*\)`.*/\1/p' \
    | sort >"$tmpdir/doc"

if ! [ -s "$tmpdir/code" ]; then
    echo "check_metrics_table: found no dod_* series in $prom_rs (pattern drift?)" >&2
    exit 1
fi
if ! [ -s "$tmpdir/doc" ]; then
    echo "check_metrics_table: found no table rows between the metrics-table markers in $readme" >&2
    exit 1
fi

if ! diff -u "$tmpdir/code" "$tmpdir/doc" >"$tmpdir/drift"; then
    echo "check_metrics_table: README metrics table disagrees with $prom_rs:" >&2
    echo "  (-) only in $prom_rs   (+) only in $readme" >&2
    grep '^[+-]dod_' "$tmpdir/drift" | sed 's/^/  /' >&2
    exit 1
fi

echo "check_metrics_table: OK ($(wc -l <"$tmpdir/code" | tr -d ' ') series match)"
