#!/usr/bin/env bash
# Crash-recovery smoke test: serve with a data directory, let the
# walkthrough create a durable session and ingest into it, SIGKILL the
# server, restart it over the same directory, and diff the recovered
# /v1/report against the pre-kill snapshot. Exercises the full stack the
# way an operator would meet it: no in-process shortcuts, a real process
# killed with no shutdown courtesy.
#
# Usage: scripts/crash_smoke.sh [port]
set -euo pipefail

PORT="${1:-8341}"
BASE="http://127.0.0.1:${PORT}"
DATA_DIR="$(mktemp -d)"
LOG_DIR="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$DATA_DIR" "$LOG_DIR"
}
trap cleanup EXIT

# Builds once up front, then runs the binary directly: SIGKILL must hit
# the server process itself, not a `cargo run` wrapper.
cargo build --release --example serve
SERVE_BIN="$(cargo metadata --format-version 1 --no-deps 2>/dev/null |
    grep -o '"target_directory":"[^"]*"' | head -1 | cut -d'"' -f4)/release/examples/serve"
[ -x "$SERVE_BIN" ] || SERVE_BIN="target/release/examples/serve"

start_server() { # $1 = log file
    DOD_LISTEN="127.0.0.1:${PORT}" DOD_DATA_DIR="$DATA_DIR" DOD_SERVE_SECS=600 \
        "$SERVE_BIN" >"$LOG_DIR/$1" 2>&1 &
    SERVER_PID=$!
}

wait_for() { # $1 = path, $2 = description
    for _ in $(seq 1 120); do
        if curl -sf "${BASE}$1" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.5
    done
    echo "timed out waiting for $2" >&2
    cat "$LOG_DIR"/*.log >&2 || true
    exit 1
}

echo "== life 1: serve with data dir ${DATA_DIR}, walkthrough ingests =="
start_server life1.log
wait_for /healthz "the server to come up"
# The walkthrough creates the durable session (s1) and ingests 400
# points into it; "server stays up" marks the walkthrough complete.
for _ in $(seq 1 240); do
    grep -q "server stays up" "$LOG_DIR/life1.log" && break
    sleep 0.5
done
grep -q "server stays up" "$LOG_DIR/life1.log" || {
    echo "walkthrough did not finish" >&2
    cat "$LOG_DIR/life1.log" >&2
    exit 1
}

curl -sf "${BASE}/v1/sessions/s1" | grep -q '"durable":true' || {
    echo "walkthrough session is not durable" >&2
    exit 1
}
curl -sf "${BASE}/v1/sessions/s1/report" >"$LOG_DIR/report_before.json"
echo "pre-kill report: $(head -c 120 "$LOG_DIR/report_before.json")..."

echo "== SIGKILL =="
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "== life 2: restart over the same data dir =="
start_server life2.log
wait_for /healthz "the restarted server"
wait_for /v1/sessions/s1 "the recovered session"

curl -sf "${BASE}/v1/sessions/s1/report" >"$LOG_DIR/report_after.json"
if ! diff "$LOG_DIR/report_before.json" "$LOG_DIR/report_after.json"; then
    echo "FAIL: recovered report differs from the pre-kill snapshot" >&2
    exit 1
fi
grep -q 'dod_wal_replayed_records_total{session="s1"}' <(curl -sf "${BASE}/metrics") || {
    echo "FAIL: /metrics lacks WAL replay counters for s1" >&2
    exit 1
}
echo "OK: post-restart /v1/report is byte-identical to the pre-kill snapshot"

echo "== life 2 continued: acked-only batch, then SIGKILL with no barrier =="
# The ack-is-durability contract, with nothing to hide behind: ingest one
# full window (the session's window is count=256) with three planted far
# points and SIGKILL the moment the 200 lands — no /v1/report, nothing
# that would flush the pipeline as a side effect. The ack itself is the
# only promise the points get.
#
# The walkthrough ingested exactly 400 points (seqs 0..399), so this
# batch is seqs 400..655 and the planted indices 10/100/200 are global
# seqs 410/500/600 — the exact post-restart outlier set: the identical
# cluster points all have 252 neighbors within r, and each far point has
# only the other two (< k=4).
PTS=""
for i in $(seq 0 255); do
    case $i in
    10 | 100 | 200) P="[1000.0,1000.0]" ;;
    *) P="[0.5,0.5]" ;;
    esac
    PTS="${PTS:+$PTS,}$P"
done
ACK="$(curl -sf -X POST "${BASE}/v1/sessions/s1/ingest" -d "{\"points\":[$PTS]}")"
echo "ingest ack: $ACK"
echo "$ACK" | grep -q '"durable":true' || {
    echo "FAIL: durable ingest ack did not promise durability" >&2
    exit 1
}

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "== life 3: the acked batch must be there =="
start_server life3.log
wait_for /healthz "the re-restarted server"
wait_for /v1/sessions/s1 "the re-recovered session"
REPORT="$(curl -sf "${BASE}/v1/sessions/s1/report")"
if [ "$REPORT" != '{"outliers":[410,500,600]}' ]; then
    echo "FAIL: acked batch lost or mangled; report: $REPORT" >&2
    exit 1
fi
echo "OK: acked-only batch survived SIGKILL; planted outliers recovered"
