#!/usr/bin/env sh
# CI gate: the README's HTTP API reference table must list exactly the
# routes declared in `Route::API_ROUTES` (crates/server/src/routes.rs).
# A route added to one side but not the other fails the build, so docs
# and dispatch cannot drift apart silently.
set -eu
cd "$(dirname "$0")/.."

routes_rs=crates/server/src/routes.rs
readme=README.md

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# `("GET", "/v1/engines"),` -> `GET /v1/engines`
sed -n '/pub const API_ROUTES/,/^];$/p' "$routes_rs" \
    | sed -n 's/^ *("\([A-Z]*\)", "\([^"]*\)"),$/\1 \2/p' \
    | sort >"$tmpdir/code"

# `| `GET` | `/v1/engines` | ... |` -> `GET /v1/engines`
sed -n '/<!-- api-table:begin -->/,/<!-- api-table:end -->/p' "$readme" \
    | sed -n 's/^| `\([A-Z]*\)` | `\([^`]*\)`.*/\1 \2/p' \
    | sort >"$tmpdir/doc"

if ! [ -s "$tmpdir/code" ]; then
    echo "check_api_table: found no routes in $routes_rs (pattern drift?)" >&2
    exit 1
fi
if ! [ -s "$tmpdir/doc" ]; then
    echo "check_api_table: found no table rows between the api-table markers in $readme" >&2
    exit 1
fi

if ! diff -u "$tmpdir/code" "$tmpdir/doc" >"$tmpdir/drift"; then
    echo "check_api_table: README API table disagrees with $routes_rs:" >&2
    echo "  (-) only in $routes_rs   (+) only in $readme" >&2
    grep '^[+-][A-Z]' "$tmpdir/drift" | sed 's/^/  /' >&2
    exit 1
fi

echo "check_api_table: OK ($(wc -l <"$tmpdir/code" | tr -d ' ') routes match)"
